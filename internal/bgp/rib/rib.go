// Package rib implements the three BGP routing information bases of
// RFC 4271 §3.2 — Adj-RIB-In, Loc-RIB and Adj-RIB-Out — plus the
// decision process (§9.1) that ties them together.
package rib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
)

// PeerKey uniquely identifies one BGP session on a router.
type PeerKey string

// DefaultLocalPref is the preference assumed when LOCAL_PREF is unset
// (RFC 4271 leaves this to policy; 100 is the universal default).
const DefaultLocalPref uint32 = 100

// Route is one path to a prefix as held in a RIB.
type Route struct {
	Prefix netip.Prefix
	Attrs  wire.PathAttrs
	// Peer identifies the session the route was learned from; empty
	// for locally-originated routes.
	Peer PeerKey
	// PeerASN is the neighbor AS of that session.
	PeerASN idr.ASN
	// PeerID is the neighbor's BGP identifier (decision tie-break).
	PeerID idr.RouterID
	// Local marks locally-originated routes, which always win the
	// decision process.
	Local bool
}

// LocalPref returns the route's effective LOCAL_PREF.
func (r *Route) LocalPref() uint32 {
	if r.Attrs.LocalPref != nil {
		return *r.Attrs.LocalPref
	}
	return DefaultLocalPref
}

// med returns the effective MULTI_EXIT_DISC (missing = 0, the
// missing-as-best convention).
func (r *Route) med() uint32 {
	if r.Attrs.MED != nil {
		return *r.Attrs.MED
	}
	return 0
}

// Clone deep-copies the route.
func (r *Route) Clone() *Route {
	if r == nil {
		return nil
	}
	out := *r
	out.Attrs = r.Attrs.Clone()
	return &out
}

// String renders the route for logs.
func (r *Route) String() string {
	if r == nil {
		return "<nil>"
	}
	src := string(r.Peer)
	if r.Local {
		src = "local"
	}
	return fmt.Sprintf("%v via %s [%s]", r.Prefix, src, r.Attrs.ASPath)
}

// Better reports whether a is preferred over b by the BGP decision
// process (RFC 4271 §9.1.2.2), with the framework's conventions:
//
//  0. a locally-originated route beats any learned route;
//  1. highest LOCAL_PREF;
//  2. shortest AS_PATH;
//  3. lowest ORIGIN (IGP < EGP < incomplete);
//  4. lowest MED, compared only between routes from the same
//     neighbor AS;
//  5. lowest peer BGP identifier;
//  6. lowest peer key (final deterministic tie-break for parallel
//     sessions to one router).
//
// All sessions in the framework are eBGP, so the eBGP-over-iBGP and
// IGP-cost steps do not apply. b may be nil (anything beats nothing).
func Better(a, b *Route) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	if a.Local != b.Local {
		return a.Local
	}
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		return la > lb
	}
	if pa, pb := a.Attrs.ASPath.Length(), b.Attrs.ASPath.Length(); pa != pb {
		return pa < pb
	}
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	if a.PeerASN == b.PeerASN {
		if ma, mb := a.med(), b.med(); ma != mb {
			return ma < mb
		}
	}
	if a.PeerID != b.PeerID {
		return a.PeerID.Less(b.PeerID)
	}
	return a.Peer < b.Peer
}

// Table is a router's complete RIB state: per-peer Adj-RIB-In, the
// locally originated routes, and the Loc-RIB (best routes).
//
// The table is sharded by prefix hash (dpdk-style): every per-prefix
// structure — Adj-RIB-In entries, local routes, Loc-RIB, the candidate
// index, the by-length lookup buckets — lives entirely in the prefix's
// shard, under that shard's lock. Exported methods lock exactly the
// shards they touch, so shards can be mutated, enumerated and
// snapshotted independently; cross-shard enumerators merge and sort
// globally, which makes every enumeration (and therefore every
// serialization built on it) byte-identical at any shard count.
//
// Two indexes keep the hot paths off the maps: cands holds, per
// prefix, every Adj-RIB-In candidate sorted by peer key (maintained
// incrementally, so the decision process neither allocates nor sorts
// per UPDATE), and byLen buckets the shard's Loc-RIB slice by prefix
// length; the table-level lenCount counters let Lookup probe only
// populated lengths — one masked prefix, in one shard — per step.
type Table struct {
	shards []tableShard
	mask   uint32
	// lenCount[bits] is the number of Loc-RIB entries of that prefix
	// length across all shards. Atomic so concurrent mutators of
	// different shards never race on the shared counters.
	lenCount [maxPrefixBits + 1]atomic.Int32
}

// tableShard owns every per-prefix structure for the prefixes that
// hash to it. All fields are guarded by mu.
type tableShard struct {
	mu    sync.Mutex
	adjIn map[PeerKey]map[netip.Prefix]*Route
	local map[netip.Prefix]*Route
	best  map[netip.Prefix]*Route
	cands map[netip.Prefix][]*Route
	byLen [maxPrefixBits + 1]map[netip.Prefix]*Route
}

// maxPrefixBits is the longest prefix length Table can index (IPv6).
const maxPrefixBits = 128

// DefaultShards is the shard count used by NewTable. Eight keeps shard
// contention negligible for the parallel snapshot/distribution paths
// while the per-shard maps stay dense.
const DefaultShards = 8

// NewTable returns an empty RIB with DefaultShards shards.
func NewTable() *Table { return NewTableShards(0) }

// NewTableShards returns an empty RIB sharded n ways, rounded up to a
// power of two; n <= 0 selects DefaultShards and n == 1 collapses to
// the historical single-map table. The shard count is an execution
// knob only: enumeration order, decision results and serialized state
// are byte-identical at any count (see FuzzRIBShardEquivalence).
func NewTableShards(n int) *Table {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Table{shards: make([]tableShard, size), mask: uint32(size - 1)}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.adjIn = make(map[PeerKey]map[netip.Prefix]*Route)
		sh.local = make(map[netip.Prefix]*Route)
		sh.best = make(map[netip.Prefix]*Route)
		sh.cands = make(map[netip.Prefix][]*Route)
	}
	return t
}

// Shards returns the table's shard count.
func (t *Table) Shards() int { return len(t.shards) }

// shardOf returns the shard owning prefix: FNV-1a over the full
// 16-byte address plus the prefix length, allocation-free so the
// decision path stays 0 allocs/op.
func (t *Table) shardOf(p netip.Prefix) *tableShard {
	if t.mask == 0 {
		return &t.shards[0]
	}
	a := p.Addr().As16()
	h := uint32(2166136261)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint32(a[i])) * 16777619
	}
	h = (h ^ uint32(uint8(p.Bits()))) * 16777619
	return &t.shards[h&t.mask]
}

// searchCands returns the position of peer in the candidate slice
// (sorted by peer key) and whether it is present. Open-coded so the
// steady-state decision path stays closure- and allocation-free.
func searchCands(s []*Route, peer PeerKey) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Peer < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo].Peer == peer
}

// indexCand inserts or replaces r in the prefix's candidate slice.
func (sh *tableShard) indexCand(r *Route) {
	s := sh.cands[r.Prefix]
	i, ok := searchCands(s, r.Peer)
	if ok {
		s[i] = r
		return
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = r
	sh.cands[r.Prefix] = s
}

// unindexCand removes the peer's route from the prefix's candidates.
func (sh *tableShard) unindexCand(peer PeerKey, prefix netip.Prefix) {
	s := sh.cands[prefix]
	i, ok := searchCands(s, peer)
	if !ok {
		return
	}
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	// Keep the (possibly empty) slice so a withdraw/re-announce cycle
	// reuses its capacity instead of reallocating.
	sh.cands[prefix] = s[:len(s)-1]
}

// setBest installs r as the shard's Loc-RIB entry for prefix,
// maintaining the by-length lookup buckets and the table-level length
// counters; nil r removes the entry.
func (t *Table) setBest(sh *tableShard, prefix netip.Prefix, r *Route) {
	bits := prefix.Bits()
	if bits < 0 || bits > maxPrefixBits {
		panic(fmt.Sprintf("rib: invalid prefix %v", prefix))
	}
	if r == nil {
		if _, ok := sh.best[prefix]; !ok {
			return
		}
		delete(sh.best, prefix)
		delete(sh.byLen[bits], prefix)
		t.lenCount[bits].Add(-1)
		return
	}
	if _, ok := sh.best[prefix]; !ok {
		t.lenCount[bits].Add(1)
	}
	sh.best[prefix] = r
	m := sh.byLen[bits]
	if m == nil {
		m = make(map[netip.Prefix]*Route)
		sh.byLen[bits] = m
	}
	m[prefix] = r
}

// Change describes one Loc-RIB transition for a prefix.
type Change struct {
	Prefix   netip.Prefix
	Old, New *Route // nil = no route
}

// Changed reports whether the transition is material (route added,
// removed, or replaced with different attributes/source).
func (c Change) Changed() bool {
	switch {
	case c.Old == nil && c.New == nil:
		return false
	case (c.Old == nil) != (c.New == nil):
		return true
	default:
		return c.Old.Peer != c.New.Peer || c.Old.Local != c.New.Local ||
			!c.Old.Attrs.Equal(c.New.Attrs)
	}
}

// SetAdjIn installs r into the Adj-RIB-In of r.Peer (implicit
// withdrawal of any previous route for the prefix from that peer) and
// re-runs the decision process for the prefix.
func (t *Table) SetAdjIn(r *Route) Change {
	if r.Peer == "" {
		panic("rib: SetAdjIn with empty peer key")
	}
	sh := t.shardOf(r.Prefix)
	sh.mu.Lock()
	m := sh.adjIn[r.Peer]
	if m == nil {
		m = make(map[netip.Prefix]*Route)
		sh.adjIn[r.Peer] = m
	}
	m[r.Prefix] = r
	sh.indexCand(r)
	c := t.decide(sh, r.Prefix)
	sh.mu.Unlock()
	return c
}

// WithdrawAdjIn removes the peer's route for prefix and re-decides.
func (t *Table) WithdrawAdjIn(peer PeerKey, prefix netip.Prefix) Change {
	sh := t.shardOf(prefix)
	sh.mu.Lock()
	if m := sh.adjIn[peer]; m != nil {
		delete(m, prefix)
	}
	sh.unindexCand(peer, prefix)
	c := t.decide(sh, prefix)
	sh.mu.Unlock()
	return c
}

// AdjIn returns the peer's current route for prefix, if any.
func (t *Table) AdjIn(peer PeerKey, prefix netip.Prefix) (*Route, bool) {
	sh := t.shardOf(prefix)
	sh.mu.Lock()
	r, ok := sh.adjIn[peer][prefix]
	sh.mu.Unlock()
	return r, ok
}

// AdjInPeerKeys returns every peer with a non-empty Adj-RIB-In,
// sorted — the deterministic enumeration order for dumps and
// snapshots, independent of the shard count.
func (t *Table) AdjInPeerKeys() []PeerKey {
	seen := make(map[PeerKey]bool)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, m := range sh.adjIn {
			if len(m) > 0 {
				seen[k] = true
			}
		}
		sh.mu.Unlock()
	}
	out := make([]PeerKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AdjInPrefixes returns all prefixes present in the peer's Adj-RIB-In,
// sorted.
func (t *Table) AdjInPrefixes(peer PeerKey) []netip.Prefix {
	var out []netip.Prefix
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for p := range sh.adjIn[peer] {
			out = append(out, p)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// DropPeer removes the peer's entire Adj-RIB-In (session failure) and
// re-decides every affected prefix in globally sorted order, returning
// the material changes — the same change sequence at any shard count.
func (t *Table) DropPeer(peer PeerKey) []Change {
	var prefixes []netip.Prefix
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for p := range sh.adjIn[peer] {
			prefixes = append(prefixes, p)
		}
		delete(sh.adjIn, peer)
		sh.mu.Unlock()
	}
	if len(prefixes) == 0 {
		return nil
	}
	sort.Slice(prefixes, func(i, j int) bool { return idr.PrefixLess(prefixes[i], prefixes[j]) })
	var out []Change
	for _, p := range prefixes {
		sh := t.shardOf(p)
		sh.mu.Lock()
		sh.unindexCand(peer, p)
		c := t.decide(sh, p)
		sh.mu.Unlock()
		if c.Changed() {
			out = append(out, c)
		}
	}
	return out
}

// Originate installs a locally-originated route and re-decides.
func (t *Table) Originate(prefix netip.Prefix, attrs wire.PathAttrs) Change {
	sh := t.shardOf(prefix)
	sh.mu.Lock()
	sh.local[prefix] = &Route{Prefix: prefix, Attrs: attrs, Local: true}
	c := t.decide(sh, prefix)
	sh.mu.Unlock()
	return c
}

// WithdrawLocal removes a locally-originated route and re-decides.
func (t *Table) WithdrawLocal(prefix netip.Prefix) Change {
	sh := t.shardOf(prefix)
	sh.mu.Lock()
	delete(sh.local, prefix)
	c := t.decide(sh, prefix)
	sh.mu.Unlock()
	return c
}

// Best returns the Loc-RIB entry for prefix, if any.
func (t *Table) Best(prefix netip.Prefix) (*Route, bool) {
	sh := t.shardOf(prefix)
	sh.mu.Lock()
	r, ok := sh.best[prefix]
	sh.mu.Unlock()
	return r, ok
}

// BestRoutes returns the whole Loc-RIB, sorted by prefix.
func (t *Table) BestRoutes() []*Route {
	var out []*Route
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, r := range sh.best {
			out = append(out, r)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i].Prefix, out[j].Prefix) })
	return out
}

// Prefixes returns every prefix known to any RIB, sorted.
func (t *Table) Prefixes() []netip.Prefix {
	set := make(map[netip.Prefix]bool)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for p := range sh.local {
			set[p] = true
		}
		for p, s := range sh.cands {
			if len(s) > 0 {
				set[p] = true
			}
		}
		sh.mu.Unlock()
	}
	out := make([]netip.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// Lookup returns the Loc-RIB route whose prefix contains addr,
// preferring the longest match — the data-plane forwarding decision.
// It walks lengths from most to least specific; the table-level
// lenCount counters skip unpopulated lengths without touching any
// shard, and a populated length costs one masked-prefix probe in the
// single shard that could own it.
func (t *Table) Lookup(addr netip.Addr) (*Route, bool) {
	for bits := addr.BitLen(); bits >= 0; bits-- {
		if t.lenCount[bits].Load() == 0 {
			continue
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		sh := t.shardOf(p)
		sh.mu.Lock()
		r, ok := sh.byLen[bits][p]
		sh.mu.Unlock()
		if ok {
			return r, true
		}
	}
	return nil, false
}

// decide re-runs the decision process for prefix by walking the
// prefix's candidate index — already sorted by peer key, so the
// iteration order (and therefore every MED tie-break) is deterministic
// and identical to the historical sorted-peers scan, without
// allocating or sorting per UPDATE. The caller must hold sh's lock,
// where sh is the prefix's shard.
func (t *Table) decide(sh *tableShard, prefix netip.Prefix) Change {
	old := sh.best[prefix]
	var best *Route
	if lr, ok := sh.local[prefix]; ok {
		best = lr
	}
	for _, r := range sh.cands[prefix] {
		if Better(r, best) {
			best = r
		}
	}
	t.setBest(sh, prefix, best)
	return Change{Prefix: prefix, Old: old, New: best}
}

// AdjOut tracks what has actually been advertised to each peer, so the
// update sender can emit minimal diffs and correct withdrawals.
type AdjOut struct {
	routes map[PeerKey]map[netip.Prefix]wire.PathAttrs
}

// NewAdjOut returns an empty Adj-RIB-Out.
func NewAdjOut() *AdjOut {
	return &AdjOut{routes: make(map[PeerKey]map[netip.Prefix]wire.PathAttrs)}
}

// Get returns the attributes last advertised to peer for prefix.
func (a *AdjOut) Get(peer PeerKey, prefix netip.Prefix) (wire.PathAttrs, bool) {
	attrs, ok := a.routes[peer][prefix]
	return attrs, ok
}

// Set records an advertisement.
func (a *AdjOut) Set(peer PeerKey, prefix netip.Prefix, attrs wire.PathAttrs) {
	m := a.routes[peer]
	if m == nil {
		m = make(map[netip.Prefix]wire.PathAttrs)
		a.routes[peer] = m
	}
	m[prefix] = attrs
}

// Delete records a withdrawal, reporting whether the prefix had been
// advertised.
func (a *AdjOut) Delete(peer PeerKey, prefix netip.Prefix) bool {
	m := a.routes[peer]
	if _, ok := m[prefix]; !ok {
		return false
	}
	delete(m, prefix)
	return true
}

// DropPeer forgets everything advertised to peer (session reset),
// returning the previously advertised prefixes, sorted.
func (a *AdjOut) DropPeer(peer PeerKey) []netip.Prefix {
	m := a.routes[peer]
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	delete(a.routes, peer)
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// Peers returns every peer with a non-empty Adj-RIB-Out, sorted —
// the deterministic enumeration order for snapshots.
func (a *AdjOut) Peers() []PeerKey {
	out := make([]PeerKey, 0, len(a.routes))
	for k, m := range a.routes {
		if len(m) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Prefixes returns the prefixes currently advertised to peer, sorted.
func (a *AdjOut) Prefixes(peer PeerKey) []netip.Prefix {
	m := a.routes[peer]
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}
