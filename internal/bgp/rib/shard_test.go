package rib

import (
	"net/netip"
	"testing"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
)

// routesEq compares routes semantically — fuzz reference and sharded
// tables build some entries (locally-originated ones) independently,
// so pointer identity is not available.
func routesEq(a, b *Route) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Prefix == b.Prefix && a.Peer == b.Peer && a.Local == b.Local &&
		a.PeerASN == b.PeerASN && a.PeerID == b.PeerID && a.Attrs.Equal(b.Attrs)
}

func changesEq(a, b Change) bool {
	return a.Prefix == b.Prefix && routesEq(a.Old, b.Old) && routesEq(a.New, b.New)
}

// fuzzPools are the fixed identifier pools the fuzz driver draws from:
// a few peers and prefixes are enough to exercise candidate-index
// churn, MED tie-breaks and cross-shard enumeration.
var fuzzPeers = []PeerKey{"as2:0", "as3:0", "as4:1", "as5:0"}

var fuzzPrefixes = []netip.Prefix{
	netip.MustParsePrefix("10.0.1.0/24"),
	netip.MustParsePrefix("10.0.2.0/24"),
	netip.MustParsePrefix("10.0.2.0/25"),
	netip.MustParsePrefix("10.1.0.0/16"),
	netip.MustParsePrefix("10.0.0.0/8"),
	netip.MustParsePrefix("192.168.7.0/24"),
	netip.MustParsePrefix("2001:db8::/32"),
	netip.MustParsePrefix("2001:db8:1::/48"),
}

// fuzzRoute derives a deterministic route for (peer, prefix, variant).
func fuzzRoute(pi int, prefix netip.Prefix, variant uint8) *Route {
	peer := fuzzPeers[pi]
	asn := idr.ASN(2 + pi)
	pathLen := 1 + int(variant%3)
	asns := make([]idr.ASN, pathLen)
	for i := range asns {
		asns[i] = idr.ASN(int(asn) + i)
	}
	r := &Route{
		Prefix:  prefix,
		Peer:    peer,
		PeerASN: asn,
		PeerID:  idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(asn)})),
		Attrs: wire.PathAttrs{
			Origin:  wire.Origin(variant % 3),
			ASPath:  wire.NewASPath(asns...),
			NextHop: netip.AddrFrom4([4]byte{100, 64, 0, byte(asn)}),
		},
	}
	if variant&8 != 0 {
		v := uint32(100 + variant%4*50)
		r.Attrs.LocalPref = &v
	}
	if variant&16 != 0 {
		v := uint32(variant % 7)
		r.Attrs.MED = &v
	}
	return r
}

// applyOp drives one decoded operation against a table and returns the
// resulting changes (nil for read-only ops).
func applyOp(t *Table, code, pi, qi int, variant uint8) []Change {
	prefix := fuzzPrefixes[qi]
	switch code {
	case 0, 1:
		return []Change{t.SetAdjIn(fuzzRoute(pi, prefix, variant))}
	case 2:
		return []Change{t.WithdrawAdjIn(fuzzPeers[pi], prefix)}
	case 3:
		return t.DropPeer(fuzzPeers[pi])
	case 4:
		attrs := wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath()}
		return []Change{t.Originate(prefix, attrs)}
	default:
		return []Change{t.WithdrawLocal(prefix)}
	}
}

// compareTables asserts every observable view of the two tables agrees:
// Loc-RIB contents, enumerations, per-peer Adj-RIB-In and longest-match
// lookups for addresses inside and around every pool prefix.
func compareTables(t *testing.T, ref, sharded *Table) {
	t.Helper()
	rb, sb := ref.BestRoutes(), sharded.BestRoutes()
	if len(rb) != len(sb) {
		t.Fatalf("BestRoutes length %d vs %d", len(rb), len(sb))
	}
	for i := range rb {
		if !routesEq(rb[i], sb[i]) {
			t.Fatalf("BestRoutes[%d]: %v vs %v", i, rb[i], sb[i])
		}
	}
	rp, sp := ref.Prefixes(), sharded.Prefixes()
	if len(rp) != len(sp) {
		t.Fatalf("Prefixes length %d vs %d", len(rp), len(sp))
	}
	for i := range rp {
		if rp[i] != sp[i] {
			t.Fatalf("Prefixes[%d]: %v vs %v", i, rp[i], sp[i])
		}
	}
	rk, sk := ref.AdjInPeerKeys(), sharded.AdjInPeerKeys()
	if len(rk) != len(sk) {
		t.Fatalf("AdjInPeerKeys length %d vs %d", len(rk), len(sk))
	}
	for i := range rk {
		if rk[i] != sk[i] {
			t.Fatalf("AdjInPeerKeys[%d]: %v vs %v", i, rk[i], sk[i])
		}
	}
	for _, peer := range fuzzPeers {
		ra, sa := ref.AdjInPrefixes(peer), sharded.AdjInPrefixes(peer)
		if len(ra) != len(sa) {
			t.Fatalf("AdjInPrefixes(%s) length %d vs %d", peer, len(ra), len(sa))
		}
		for i := range ra {
			if ra[i] != sa[i] {
				t.Fatalf("AdjInPrefixes(%s)[%d]: %v vs %v", peer, i, ra[i], sa[i])
			}
		}
	}
	for _, p := range fuzzPrefixes {
		rr, rok := ref.Best(p)
		sr, sok := sharded.Best(p)
		if rok != sok || !routesEq(rr, sr) {
			t.Fatalf("Best(%v): %v/%v vs %v/%v", p, rr, rok, sr, sok)
		}
		for _, addr := range []netip.Addr{p.Addr(), p.Addr().Next()} {
			rr, rok = ref.Lookup(addr)
			sr, sok = sharded.Lookup(addr)
			if rok != sok || !routesEq(rr, sr) {
				t.Fatalf("Lookup(%v): %v/%v vs %v/%v", addr, rr, rok, sr, sok)
			}
		}
	}
}

// FuzzRIBShardEquivalence drives a random UPDATE/withdraw/drop stream
// through a single-shard table (the historical single-map layout) and
// a multi-shard one, asserting every returned Change and every
// observable view stays identical — the shard count must be purely an
// execution detail.
func FuzzRIBShardEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 8, 2, 0, 0, 0}, uint8(3))
	f.Add([]byte{0, 0, 4, 24, 0, 1, 4, 16, 3, 0, 0, 0, 4, 0, 4, 0}, uint8(1))
	f.Add([]byte{0, 2, 6, 9, 0, 3, 7, 25, 5, 0, 6, 0, 2, 2, 6, 0}, uint8(4))
	f.Fuzz(func(t *testing.T, ops []byte, shardSel uint8) {
		ref := NewTableShards(1)
		sharded := NewTableShards(1 << (shardSel%4 + 1)) // 2..16 shards
		for i := 0; i+3 < len(ops); i += 4 {
			code := int(ops[i] % 6)
			pi := int(ops[i+1] % 4)
			qi := int(ops[i+2]) % len(fuzzPrefixes)
			variant := ops[i+3]
			rc := applyOp(ref, code, pi, qi, variant)
			sc := applyOp(sharded, code, pi, qi, variant)
			if len(rc) != len(sc) {
				t.Fatalf("op %d: %d changes vs %d", i/4, len(rc), len(sc))
			}
			for j := range rc {
				if !changesEq(rc[j], sc[j]) {
					t.Fatalf("op %d change %d: %+v vs %+v", i/4, j, rc[j], sc[j])
				}
			}
		}
		compareTables(t, ref, sharded)
	})
}

func TestNewTableShardsRounding(t *testing.T) {
	cases := map[int]int{-1: DefaultShards, 0: DefaultShards, 1: 1, 2: 2, 3: 4, 8: 8, 9: 16}
	for n, want := range cases {
		if got := NewTableShards(n).Shards(); got != want {
			t.Fatalf("NewTableShards(%d).Shards() = %d, want %d", n, got, want)
		}
	}
	if got := NewTable().Shards(); got != DefaultShards {
		t.Fatalf("NewTable().Shards() = %d, want %d", got, DefaultShards)
	}
}

// The length counters that guide Lookup must track Loc-RIB insertions
// and removals exactly, across shards.
func TestLenCountTracksLocRIB(t *testing.T) {
	tbl := NewTable()
	for qi := range fuzzPrefixes {
		tbl.SetAdjIn(fuzzRoute(0, fuzzPrefixes[qi], 0))
	}
	for _, p := range fuzzPrefixes {
		if tbl.lenCount[p.Bits()].Load() == 0 {
			t.Fatalf("lenCount[%d] = 0 after install", p.Bits())
		}
	}
	tbl.DropPeer(fuzzPeers[0])
	for bits := 0; bits <= maxPrefixBits; bits++ {
		if n := tbl.lenCount[bits].Load(); n != 0 {
			t.Fatalf("lenCount[%d] = %d after drop, want 0", bits, n)
		}
	}
}
