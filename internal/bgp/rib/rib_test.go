package rib

import (
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
)

var (
	pfxA = netip.MustParsePrefix("10.0.1.0/24")
	pfxB = netip.MustParsePrefix("10.0.2.0/24")
)

func lp(v uint32) *uint32 { return &v }

func route(peer PeerKey, peerASN idr.ASN, prefix netip.Prefix, pathASNs ...idr.ASN) *Route {
	return &Route{
		Prefix:  prefix,
		Peer:    peer,
		PeerASN: peerASN,
		PeerID:  idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(peerASN)})),
		Attrs: wire.PathAttrs{
			Origin:  wire.OriginIGP,
			ASPath:  wire.NewASPath(pathASNs...),
			NextHop: netip.AddrFrom4([4]byte{100, 64, 0, byte(peerASN)}),
		},
	}
}

func TestBetterLocalWins(t *testing.T) {
	local := &Route{Prefix: pfxA, Local: true}
	learned := route("p1", 2, pfxA, 2)
	if !Better(local, learned) || Better(learned, local) {
		t.Fatal("local route must beat learned route")
	}
}

func TestBetterLocalPref(t *testing.T) {
	hi := route("p1", 2, pfxA, 2, 3, 4)
	hi.Attrs.LocalPref = lp(200)
	lo := route("p2", 3, pfxA, 3)
	lo.Attrs.LocalPref = lp(100)
	if !Better(hi, lo) {
		t.Fatal("higher LOCAL_PREF must win despite longer path")
	}
	// Default LOCAL_PREF is 100.
	def := route("p3", 4, pfxA, 4)
	if !Better(hi, def) {
		t.Fatal("200 must beat default 100")
	}
}

func TestBetterPathLength(t *testing.T) {
	short := route("p1", 2, pfxA, 2)
	long := route("p2", 3, pfxA, 3, 4)
	if !Better(short, long) || Better(long, short) {
		t.Fatal("shorter AS path must win")
	}
}

func TestBetterOrigin(t *testing.T) {
	igp := route("p1", 2, pfxA, 2)
	egp := route("p2", 3, pfxA, 3)
	egp.Attrs.Origin = wire.OriginEGP
	if !Better(igp, egp) {
		t.Fatal("IGP origin must beat EGP")
	}
}

func TestBetterMEDSameNeighborOnly(t *testing.T) {
	a := route("p1", 2, pfxA, 2)
	a.Attrs.MED = lp(10)
	b := route("p2", 2, pfxA, 2)
	b.Attrs.MED = lp(20)
	if !Better(a, b) {
		t.Fatal("lower MED from same neighbor AS must win")
	}
	// Different neighbor AS: MED ignored, falls through to router ID.
	c := route("p3", 3, pfxA, 3)
	c.Attrs.MED = lp(999)
	d := route("p4", 4, pfxA, 4)
	d.Attrs.MED = lp(1)
	// c has peer ID ...3 < d's ...4, so c wins despite huge MED.
	if !Better(c, d) {
		t.Fatal("MED must be ignored across neighbor ASes")
	}
}

func TestBetterRouterIDTieBreak(t *testing.T) {
	a := route("p1", 2, pfxA, 2)
	b := route("p2", 3, pfxA, 3)
	if !Better(a, b) || Better(b, a) {
		t.Fatal("lower router ID must win")
	}
}

func TestBetterPeerKeyFinalTieBreak(t *testing.T) {
	a := route("p1", 2, pfxA, 2)
	b := route("p2", 2, pfxA, 2)
	b.PeerID = a.PeerID
	if !Better(a, b) || Better(b, a) {
		t.Fatal("lower peer key must break final tie")
	}
}

func TestBetterNil(t *testing.T) {
	r := route("p1", 2, pfxA, 2)
	if !Better(r, nil) {
		t.Fatal("route must beat nil")
	}
	if Better(nil, r) || Better(nil, nil) {
		t.Fatal("nil must not beat anything")
	}
}

func TestTableSetAndDecide(t *testing.T) {
	tbl := NewTable()
	c := tbl.SetAdjIn(route("p1", 2, pfxA, 2, 5))
	if !c.Changed() || c.New == nil || c.Old != nil {
		t.Fatalf("first route change = %+v", c)
	}
	best, ok := tbl.Best(pfxA)
	if !ok || best.Peer != "p1" {
		t.Fatal("best not installed")
	}
	// A better route displaces it.
	c = tbl.SetAdjIn(route("p2", 3, pfxA, 3))
	if !c.Changed() || c.New.Peer != "p2" {
		t.Fatalf("better route should win: %+v", c)
	}
	// A worse route changes nothing.
	c = tbl.SetAdjIn(route("p4", 4, pfxA, 4, 5, 6))
	if c.Changed() {
		t.Fatal("worse route must not change Loc-RIB")
	}
}

func TestImplicitWithdraw(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, pfxA, 2))
	// Same peer re-announces with a longer path; second peer now wins.
	tbl.SetAdjIn(route("p2", 3, pfxA, 3, 9))
	c := tbl.SetAdjIn(route("p1", 2, pfxA, 2, 7, 8, 9))
	if !c.Changed() || c.New.Peer != "p2" {
		t.Fatalf("implicit withdrawal not honored: %+v", c)
	}
	r, ok := tbl.AdjIn("p1", pfxA)
	if !ok || r.Attrs.ASPath.Length() != 4 {
		t.Fatal("Adj-RIB-In should hold the replacement route")
	}
}

func TestWithdrawAdjIn(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, pfxA, 2))
	tbl.SetAdjIn(route("p2", 3, pfxA, 3, 4))
	c := tbl.WithdrawAdjIn("p1", pfxA)
	if !c.Changed() || c.New.Peer != "p2" {
		t.Fatalf("withdrawal should fall back to p2: %+v", c)
	}
	c = tbl.WithdrawAdjIn("p2", pfxA)
	if !c.Changed() || c.New != nil {
		t.Fatalf("last withdrawal should empty Loc-RIB: %+v", c)
	}
	if _, ok := tbl.Best(pfxA); ok {
		t.Fatal("best should be gone")
	}
	// Withdrawing a never-announced prefix is a no-op.
	if c := tbl.WithdrawAdjIn("p9", pfxB); c.Changed() {
		t.Fatal("no-op withdrawal must not change")
	}
}

func TestDropPeer(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, pfxA, 2))
	tbl.SetAdjIn(route("p1", 2, pfxB, 2))
	tbl.SetAdjIn(route("p2", 3, pfxA, 3, 4))
	changes := tbl.DropPeer("p1")
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	if best, ok := tbl.Best(pfxA); !ok || best.Peer != "p2" {
		t.Fatal("pfxA should fall back to p2")
	}
	if _, ok := tbl.Best(pfxB); ok {
		t.Fatal("pfxB should be unreachable")
	}
	if got := tbl.DropPeer("p1"); got != nil {
		t.Fatal("second drop should be nil")
	}
}

func TestOriginateAndWithdrawLocal(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, pfxA, 2))
	c := tbl.Originate(pfxA, wire.PathAttrs{Origin: wire.OriginIGP})
	if !c.Changed() || !c.New.Local {
		t.Fatalf("local route should win: %+v", c)
	}
	c = tbl.WithdrawLocal(pfxA)
	if !c.Changed() || c.New == nil || c.New.Peer != "p1" {
		t.Fatalf("withdrawing local should fall back: %+v", c)
	}
}

func TestChangeChanged(t *testing.T) {
	r1 := route("p1", 2, pfxA, 2)
	r2 := route("p1", 2, pfxA, 2)
	if (Change{Prefix: pfxA, Old: r1, New: r2}).Changed() {
		t.Fatal("identical routes should not be a change")
	}
	r3 := route("p1", 2, pfxA, 2, 3)
	if !(Change{Prefix: pfxA, Old: r1, New: r3}).Changed() {
		t.Fatal("different attrs should be a change")
	}
	if (Change{}).Changed() {
		t.Fatal("nil->nil is not a change")
	}
	if !(Change{New: r1}).Changed() || !(Change{Old: r1}).Changed() {
		t.Fatal("appear/disappear are changes")
	}
}

func TestAdjInPrefixesSorted(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, pfxB, 2))
	tbl.SetAdjIn(route("p1", 2, pfxA, 2))
	got := tbl.AdjInPrefixes("p1")
	if len(got) != 2 || got[0] != pfxA || got[1] != pfxB {
		t.Fatalf("AdjInPrefixes = %v", got)
	}
}

func TestBestRoutesAndPrefixes(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, pfxB, 2))
	tbl.Originate(pfxA, wire.PathAttrs{})
	best := tbl.BestRoutes()
	if len(best) != 2 || best[0].Prefix != pfxA || best[1].Prefix != pfxB {
		t.Fatalf("BestRoutes = %v", best)
	}
	all := tbl.Prefixes()
	if len(all) != 2 {
		t.Fatalf("Prefixes = %v", all)
	}
}

func TestSetAdjInEmptyPeerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable().SetAdjIn(&Route{Prefix: pfxA})
}

func TestRouteCloneAndString(t *testing.T) {
	r := route("p1", 2, pfxA, 2)
	c := r.Clone()
	c.Attrs.ASPath[0].ASNs[0] = 99
	if r.Attrs.ASPath[0].ASNs[0] != 2 {
		t.Fatal("Clone shares path memory")
	}
	if r.String() == "" || (&Route{Prefix: pfxA, Local: true}).String() == "" {
		t.Fatal("String should render")
	}
	var nilRoute *Route
	if nilRoute.String() != "<nil>" {
		t.Fatal("nil String wrong")
	}
	if nilRoute.Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestAdjOut(t *testing.T) {
	ao := NewAdjOut()
	attrs := wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(1)}
	if _, ok := ao.Get("p1", pfxA); ok {
		t.Fatal("empty AdjOut should miss")
	}
	ao.Set("p1", pfxA, attrs)
	ao.Set("p1", pfxB, attrs)
	got, ok := ao.Get("p1", pfxA)
	if !ok || !got.Equal(attrs) {
		t.Fatal("Get after Set wrong")
	}
	if ps := ao.Prefixes("p1"); len(ps) != 2 || ps[0] != pfxA {
		t.Fatalf("Prefixes = %v", ps)
	}
	if !ao.Delete("p1", pfxA) || ao.Delete("p1", pfxA) {
		t.Fatal("Delete semantics wrong")
	}
	dropped := ao.DropPeer("p1")
	if len(dropped) != 1 || dropped[0] != pfxB {
		t.Fatalf("DropPeer = %v", dropped)
	}
	if ps := ao.Prefixes("p1"); len(ps) != 0 {
		t.Fatal("peer should be empty after drop")
	}
}

// Property: the decision process is deterministic and order-independent
// — feeding the same routes in any order yields the same best route.
func TestPropertyDecisionOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		routes := make([]*Route, n)
		for i := range routes {
			pathLen := 1 + rng.Intn(4)
			path := make([]idr.ASN, pathLen)
			for j := range path {
				path[j] = idr.ASN(1 + rng.Intn(50))
			}
			r := route(PeerKey(string(rune('a'+i))), idr.ASN(2+i), pfxA, path...)
			if rng.Intn(3) == 0 {
				r.Attrs.LocalPref = lp(uint32(50 + rng.Intn(200)))
			}
			if rng.Intn(3) == 0 {
				r.Attrs.MED = lp(uint32(rng.Intn(100)))
			}
			r.Attrs.Origin = wire.Origin(rng.Intn(3))
			routes[i] = r
		}
		tbl1 := NewTable()
		for _, r := range routes {
			tbl1.SetAdjIn(r.Clone())
		}
		tbl2 := NewTable()
		perm := rng.Perm(n)
		for _, i := range perm {
			tbl2.SetAdjIn(routes[i].Clone())
		}
		b1, ok1 := tbl1.Best(pfxA)
		b2, ok2 := tbl2.Best(pfxA)
		if !ok1 || !ok2 {
			t.Fatal("best missing")
		}
		if b1.Peer != b2.Peer {
			t.Fatalf("trial %d: insertion order changed best: %v vs %v", trial, b1, b2)
		}
	}
}

// Property: Better is asymmetric over distinct routes and irreflexive.
func TestPropertyBetterStrictOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		mk := func(i int) *Route {
			path := make([]idr.ASN, 1+rng.Intn(3))
			for j := range path {
				path[j] = idr.ASN(1 + rng.Intn(9))
			}
			r := route(PeerKey(string(rune('a'+i))), idr.ASN(2+rng.Intn(3)), pfxA, path...)
			if rng.Intn(2) == 0 {
				r.Attrs.LocalPref = lp(uint32(100 + rng.Intn(2)*100))
			}
			return r
		}
		a, b := mk(0), mk(1)
		if Better(a, a) {
			t.Fatal("Better must be irreflexive")
		}
		if Better(a, b) && Better(b, a) {
			t.Fatal("Better must be asymmetric")
		}
		if !Better(a, b) && !Better(b, a) && a.Peer != b.Peer {
			t.Fatal("distinct peers must totally order")
		}
	}
}

func TestLookupLongestPrefixMatch(t *testing.T) {
	tbl := NewTable()
	tbl.SetAdjIn(route("p1", 2, netip.MustParsePrefix("10.0.0.0/8"), 2))
	tbl.SetAdjIn(route("p2", 3, netip.MustParsePrefix("10.1.0.0/16"), 3))
	tbl.Originate(netip.MustParsePrefix("10.1.2.0/24"), wire.PathAttrs{})

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "10.1.2.0/24"},
		{"10.1.9.9", "10.1.0.0/16"},
		{"10.9.9.9", "10.0.0.0/8"},
	}
	for _, c := range cases {
		r, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
		if !ok || r.Prefix.String() != c.want {
			t.Errorf("Lookup(%s) = %v, want %s", c.addr, r, c.want)
		}
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("192.168.1.1")); ok {
		t.Fatal("no route expected")
	}
}

// Property: Lookup agrees with a brute-force longest-prefix scan.
func TestPropertyLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		tbl := NewTable()
		var prefixes []netip.Prefix
		for i := 0; i < 1+rng.Intn(10); i++ {
			var b4 [4]byte
			rng.Read(b4[:])
			p := netip.PrefixFrom(netip.AddrFrom4(b4), rng.Intn(25)).Masked()
			prefixes = append(prefixes, p)
			tbl.SetAdjIn(route(PeerKey(string(rune('a'+i))), idr.ASN(i+2), p, idr.ASN(i+2)))
		}
		var a4 [4]byte
		rng.Read(a4[:])
		addr := netip.AddrFrom4(a4)
		var want netip.Prefix
		found := false
		for _, p := range prefixes {
			if !p.Contains(addr) {
				continue
			}
			if !found || p.Bits() > want.Bits() {
				want, found = p, true
			}
		}
		got, ok := tbl.Lookup(addr)
		if ok != found {
			t.Fatalf("trial %d: Lookup(%v) ok=%v want %v", trial, addr, ok, found)
		}
		if found && got.Prefix.Bits() != want.Bits() {
			t.Fatalf("trial %d: Lookup(%v) = %v, want bits %d", trial, addr, got.Prefix, want.Bits())
		}
	}
}

// TestDecideZeroAllocSteadyState pins the decision-path optimisation:
// re-announcing a route from an already-known peer (the steady-state
// UPDATE path during convergence) must not allocate — the candidate
// index is updated in place and no per-decision peer sort happens.
func TestDecideZeroAllocSteadyState(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 16; i++ {
		tbl.SetAdjIn(route(PeerKey(string(rune('a'+i))), idr.ASN(i+2), pfxA, idr.ASN(i+2), 1))
	}
	update := route("z", 99, pfxA, 99, 1)
	tbl.SetAdjIn(update) // prime: first install may grow the index
	allocs := testing.AllocsPerRun(1000, func() {
		tbl.SetAdjIn(update)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SetAdjIn allocates %.1f times per call, want 0", allocs)
	}
	withdrawn := route("z", 99, pfxB, 99, 1)
	tbl.SetAdjIn(withdrawn)
	allocs = testing.AllocsPerRun(1000, func() {
		tbl.WithdrawAdjIn("z", pfxB)
		tbl.SetAdjIn(withdrawn)
	})
	if allocs != 0 {
		t.Fatalf("withdraw/re-announce cycle allocates %.1f times per call, want 0", allocs)
	}
}
