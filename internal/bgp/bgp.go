// Package bgp implements a BGP-4 speaker: session FSM (RFC 4271 §8),
// update processing, decision process integration, MRAI-paced route
// advertisement and policy hooks. One Router instance is the
// framework's stand-in for one Quagga bgpd process; in the paper's
// model each AS runs exactly one of them.
//
// The implementation is single-threaded on a sim.Clock executor: all
// entry points (Deliver, TransportUp/Down, Announce, ...) must be
// called from clock events, which the emulator guarantees.
package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/sim"
)

// State is the BGP session state (RFC 4271 §8.2.2). The framework's
// transport is message-based, so the TCP-level Connect/Active states
// collapse into Idle.
type State int

// Session states.
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Timers collects the protocol timers. Zero values select defaults.
type Timers struct {
	// HoldTime proposed in OPEN (default 90s). The negotiated value is
	// min(local, remote).
	HoldTime time.Duration
	// KeepaliveFraction divides the negotiated hold time to obtain the
	// keepalive interval (default 3, i.e. hold/3).
	KeepaliveFraction int
	// ConnectRetry delays session re-establishment after a reset
	// (default 5s).
	ConnectRetry time.Duration
	// MRAI is the MinRouteAdvertisementInterval on a per-peer basis
	// (default 30s, the classic eBGP default that drives BGP's slow
	// path exploration). Like Quagga's advertisement-interval — the
	// BGP implementation the paper's framework runs — it paces the
	// peer's whole update emission: announcements and withdrawals
	// leave in one batch per interval. Set WithdrawalsImmediate for
	// the strict RFC 4271 reading that exempts explicit withdrawals.
	MRAI time.Duration
	// WithdrawalsImmediate sends explicit withdrawals outside the
	// MRAI batch (not Quagga's behaviour; kept for ablations).
	WithdrawalsImmediate bool
	// MRAIJitter, when true (the default via DefaultTimers), samples
	// each interval uniformly from [0.75, 1.0) * MRAI as RFC 4271
	// §9.2.2.3 recommends; this is what spreads convergence times
	// across runs.
	MRAIJitter bool
}

// DefaultTimers returns the framework defaults (Quagga-like).
func DefaultTimers() Timers {
	return Timers{
		HoldTime:          90 * time.Second,
		KeepaliveFraction: 3,
		ConnectRetry:      5 * time.Second,
		MRAI:              30 * time.Second,
		MRAIJitter:        true,
	}
}

// Resolved returns the timers with every zero field replaced by its
// documented default — the exact values a router configured with t
// runs with. MRAIJitter is returned as set: false has no distinct
// "default" marker, so it only defaults through DefaultTimers.
// Callers that need a stable, fully-specified echo of the timers (the
// canonical spec serialization behind the artifact store) use this
// instead of duplicating the defaults.
func (t Timers) Resolved() Timers {
	t.setDefaults()
	return t
}

func (t *Timers) setDefaults() {
	d := DefaultTimers()
	if t.HoldTime == 0 {
		t.HoldTime = d.HoldTime
	}
	if t.KeepaliveFraction == 0 {
		t.KeepaliveFraction = d.KeepaliveFraction
	}
	if t.ConnectRetry == 0 {
		t.ConnectRetry = d.ConnectRetry
	}
	if t.MRAI == 0 {
		t.MRAI = d.MRAI
	}
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceState TraceKind = iota // session state change
	TraceSend                   // message sent
	TraceRecv                   // message received
	TraceBest                   // Loc-RIB change
)

// TraceEvent is one observable router event, consumed by the
// framework's log-analysis and convergence tools.
type TraceEvent struct {
	Time   time.Time
	Router idr.ASN
	Kind   TraceKind
	Peer   rib.PeerKey
	State  State        // TraceState
	Msg    wire.Message // TraceSend/TraceRecv
	Change *rib.Change  // TraceBest
}

// Stats counts router activity for the analysis tools.
type Stats struct {
	UpdatesSent, UpdatesReceived         uint64
	PrefixesAnnounced, PrefixesWithdrawn uint64 // counted on send
	OpensSent, NotificationsSent         uint64
	KeepalivesSent                       uint64
	SessionResets                        uint64
}

// Config configures a Router.
type Config struct {
	ASN      idr.ASN
	RouterID idr.RouterID
	Clock    sim.Clock
	// Rand drives MRAI jitter; required when Timers.MRAIJitter is set.
	Rand   *rand.Rand
	Policy policy.Policy // default policy.PermitAll{}
	Timers Timers
	// Trace, when non-nil, receives every TraceEvent.
	Trace func(TraceEvent)
	// Damping, when non-nil, enables RFC 2439 route-flap damping on
	// received routes.
	Damping *DampingConfig
	// ProcessingDelay models the router's per-UPDATE processing cost
	// (real BGP daemons spend milliseconds per update; Mininet-style
	// emulations share one CPU across all routers). Inbound messages
	// are serialised through a single work queue; each UPDATE costs a
	// jittered (+-50%) ProcessingDelay, other messages are free. Zero
	// disables the model.
	ProcessingDelay time.Duration
	// RIBShards overrides the RIB shard count (0 selects
	// rib.DefaultShards; 1 collapses to the historical single-map
	// table). Purely an execution knob: results are byte-identical at
	// any count.
	RIBShards int
}

// Router is one BGP speaker.
type Router struct {
	cfg    Config
	table  *rib.Table
	adjOut *rib.AdjOut
	peers  map[rib.PeerKey]*Peer
	// peerList holds the sessions sorted by key — the deterministic
	// fan-out order of onChange, maintained at AddPeer time so the
	// per-UPDATE path never re-sorts.
	peerList []*Peer
	// originated remembers locally-announced prefixes.
	originated map[netip.Prefix]wire.PathAttrs
	stats      Stats
	// busyUntil serialises the processing-delay work queue.
	busyUntil time.Time
	// damping is nil unless Config.Damping is set.
	damping *damping
	// arena interns exported AS paths (see attrArena).
	arena attrArena
}

// New validates cfg and returns a Router.
func New(cfg Config) (*Router, error) {
	if cfg.ASN == 0 {
		return nil, fmt.Errorf("bgp: config needs an ASN")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("bgp: config needs a clock")
	}
	cfg.Timers.setDefaults()
	if cfg.Timers.MRAIJitter && cfg.Rand == nil {
		return nil, fmt.Errorf("bgp: MRAI jitter needs a random source")
	}
	if cfg.ProcessingDelay < 0 {
		return nil, fmt.Errorf("bgp: negative processing delay")
	}
	if cfg.ProcessingDelay > 0 && cfg.Rand == nil {
		return nil, fmt.Errorf("bgp: processing delay needs a random source")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.PermitAll{}
	}
	r := &Router{
		cfg:        cfg,
		table:      rib.NewTableShards(cfg.RIBShards),
		adjOut:     rib.NewAdjOut(),
		peers:      make(map[rib.PeerKey]*Peer),
		originated: make(map[netip.Prefix]wire.PathAttrs),
	}
	if cfg.Damping != nil {
		r.damping = newDamping(*cfg.Damping, r)
	}
	return r, nil
}

// ASN returns the router's AS number.
func (r *Router) ASN() idr.ASN { return r.cfg.ASN }

// RouterID returns the router's BGP identifier.
func (r *Router) RouterID() idr.RouterID { return r.cfg.RouterID }

// Table exposes the RIBs (read-only use by monitors).
func (r *Router) Table() *rib.Table { return r.table }

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() Stats { return r.stats }

func (r *Router) trace(ev TraceEvent) {
	if r.cfg.Trace != nil {
		ev.Time = r.cfg.Clock.Now()
		ev.Router = r.cfg.ASN
		r.cfg.Trace(ev)
	}
}

// PeerConfig configures one session.
type PeerConfig struct {
	// Key must be unique within the router (e.g. "to-AS7").
	Key rib.PeerKey
	// RemoteASN is the expected neighbor AS, verified against OPEN.
	RemoteASN idr.ASN
	// Neighbor carries the policy-relevant relationship.
	Neighbor policy.Neighbor
	// NextHop is the local address announced as NEXT_HOP on this
	// session.
	NextHop netip.Addr
	// Send transmits one wire message to the neighbor. It must be
	// reliable and in-order while the transport is up.
	Send func([]byte) error
}

// AddPeer registers a session. The session stays Idle until
// TransportUp is called.
func (r *Router) AddPeer(pc PeerConfig) (*Peer, error) {
	if pc.Key == "" {
		return nil, fmt.Errorf("bgp: peer needs a key")
	}
	if _, dup := r.peers[pc.Key]; dup {
		return nil, fmt.Errorf("bgp: duplicate peer %q", pc.Key)
	}
	if pc.RemoteASN == 0 {
		return nil, fmt.Errorf("bgp: peer %q needs a remote ASN", pc.Key)
	}
	if pc.Send == nil {
		return nil, fmt.Errorf("bgp: peer %q needs a send function", pc.Key)
	}
	if pc.Neighbor.Key == "" {
		pc.Neighbor.Key = pc.Key
	}
	if pc.Neighbor.ASN == 0 {
		pc.Neighbor.ASN = pc.RemoteASN
	}
	p := &Peer{
		router:          r,
		cfg:             pc,
		state:           StateIdle,
		pendingAnnounce: make(map[netip.Prefix]wire.PathAttrs),
		pendingWithdraw: make(map[netip.Prefix]bool),
	}
	r.peers[pc.Key] = p
	r.peerList = append(r.peerList, p)
	sort.Slice(r.peerList, func(i, j int) bool { return r.peerList[i].cfg.Key < r.peerList[j].cfg.Key })
	return p, nil
}

// Peer returns the session with the given key.
func (r *Router) Peer(key rib.PeerKey) (*Peer, bool) {
	p, ok := r.peers[key]
	return p, ok
}

// Peers returns all sessions keyed by peer key.
func (r *Router) Peers() map[rib.PeerKey]*Peer { return r.peers }

// EstablishedCount returns the number of Established sessions.
func (r *Router) EstablishedCount() int {
	n := 0
	for _, p := range r.peers {
		if p.state == StateEstablished {
			n++
		}
	}
	return n
}

// Announce originates prefix from this router and propagates it.
func (r *Router) Announce(prefix netip.Prefix) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("bgp: only IPv4 prefixes supported, got %v", prefix)
	}
	attrs := wire.PathAttrs{Origin: wire.OriginIGP}
	r.originated[prefix] = attrs
	change := r.table.Originate(prefix, attrs)
	r.onChange(change)
	return nil
}

// Withdraw removes a locally-originated prefix.
func (r *Router) Withdraw(prefix netip.Prefix) error {
	if _, ok := r.originated[prefix]; !ok {
		return fmt.Errorf("bgp: %v was not originated here", prefix)
	}
	delete(r.originated, prefix)
	change := r.table.WithdrawLocal(prefix)
	r.onChange(change)
	return nil
}

// Originated returns the locally-announced prefixes.
func (r *Router) Originated() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(r.originated))
	for p := range r.originated {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// onChange reacts to one Loc-RIB transition: trace it and schedule
// updates toward every established peer (in deterministic key order,
// so a seed fully determines a run). The best route and its
// learned-from neighbor are resolved once here instead of once per
// peer — on a router with P sessions that turns each routing change
// from P map probes into one.
func (r *Router) onChange(change rib.Change) {
	if !change.Changed() {
		return
	}
	c := change
	r.trace(TraceEvent{Kind: TraceBest, Change: &c})
	best, ok := r.table.Best(change.Prefix)
	var learnedFrom policy.Neighbor
	if ok {
		learnedFrom = r.learnedFromNeighbor(best)
	}
	for _, p := range r.peerList {
		p.scheduleRoute(change.Prefix, best, ok, learnedFrom)
	}
}

// learnedFromNeighbor resolves the policy neighbor a route was learned
// from (policy.Local for originated routes).
func (r *Router) learnedFromNeighbor(rt *rib.Route) policy.Neighbor {
	if rt.Local {
		return policy.Local
	}
	if p, ok := r.peers[rt.Peer]; ok {
		return p.cfg.Neighbor
	}
	return policy.Neighbor{Key: rt.Peer, ASN: rt.PeerASN}
}

// exportAttrs builds the eBGP attributes for advertising rt to p:
// prepend the local ASN, set NEXT_HOP to the session address, strip
// LOCAL_PREF (eBGP), and strip MED on re-advertisement of learned
// routes. The prepended path comes from the router's attr arena, so
// the steady-state export path shares one interned copy per distinct
// source path instead of allocating per advertisement; the export
// side treats attribute sets as immutable (see Policy).
func (r *Router) exportAttrs(p *Peer, rt *rib.Route) wire.PathAttrs {
	attrs := rt.Attrs
	attrs.ASPath = r.arena.prepend(attrs.ASPath, r.cfg.ASN)
	attrs.NextHop = p.cfg.NextHop
	attrs.LocalPref = nil
	if !rt.Local {
		attrs.MED = nil
	}
	return attrs
}

// Deliver hands one received wire frame to the session it arrived on.
// Unknown peers and frames on Idle sessions are dropped (the transport
// may race a session reset). With ProcessingDelay set, frames pass
// through the router's serialised work queue first.
func (r *Router) Deliver(key rib.PeerKey, frame []byte) {
	p, ok := r.peers[key]
	if !ok {
		return
	}
	if r.cfg.ProcessingDelay == 0 {
		p.deliver(frame)
		return
	}
	now := r.cfg.Clock.Now()
	start := now
	if r.busyUntil.After(start) {
		start = r.busyUntil
	}
	var cost time.Duration
	if len(frame) > wire.MarkerLen+2 && wire.MsgType(frame[wire.MarkerLen+2]) == wire.MsgUpdate {
		// Jitter +-50% so runs with different seeds interleave
		// processing differently, as real schedulers do.
		f := 0.5 + r.cfg.Rand.Float64()
		cost = time.Duration(float64(r.cfg.ProcessingDelay) * f)
	}
	finish := start.Add(cost)
	r.busyUntil = finish
	r.cfg.Clock.AfterFunc(finish.Sub(now), func() { p.deliver(frame) })
}
