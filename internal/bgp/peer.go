package bgp

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Peer is one BGP session on a Router.
type Peer struct {
	router *Router
	cfg    PeerConfig
	state  State

	transportUp bool
	remoteID    idr.RouterID
	remoteASN   idr.ASN
	holdTime    time.Duration // negotiated

	holdTimer      sim.Timer
	keepaliveTimer sim.Timer
	retryTimer     sim.Timer
	mraiTimer      sim.Timer
	// holdIsGuard records which callback holdTimer was armed with —
	// the OpenSent guard (openGuardExpire) or the negotiated hold
	// timer (holdExpire) — so re-arms can Reset the existing timer in
	// place when the callback matches instead of allocating a new one.
	holdIsGuard bool

	// Pending outbound route changes, flushed under MRAI pacing.
	pendingAnnounce map[netip.Prefix]wire.PathAttrs
	pendingWithdraw map[netip.Prefix]bool
	// nextAdvAllowed is when the next announcement flush may happen.
	nextAdvAllowed time.Time
}

// State returns the session state.
func (p *Peer) State() State { return p.state }

// Key returns the session key.
func (p *Peer) Key() rib.PeerKey { return p.cfg.Key }

// RemoteASN returns the configured neighbor AS.
func (p *Peer) RemoteASN() idr.ASN { return p.cfg.RemoteASN }

func (p *Peer) clock() sim.Clock { return p.router.cfg.Clock }

func (p *Peer) setState(s State) {
	if p.state == s {
		return
	}
	p.state = s
	p.router.trace(TraceEvent{Kind: TraceState, Peer: p.cfg.Key, State: s})
}

// TransportUp signals that the underlying transport (link) is usable.
// The session starts opening immediately.
func (p *Peer) TransportUp() {
	if p.transportUp {
		return
	}
	p.transportUp = true
	p.startOpen()
}

// TransportDown signals transport loss: the session resets and will
// retry once the transport returns.
func (p *Peer) TransportDown() {
	if !p.transportUp {
		return
	}
	p.transportUp = false
	p.reset(false)
}

// startOpen begins session establishment (Idle -> OpenSent).
func (p *Peer) startOpen() {
	if !p.transportUp || p.state != StateIdle {
		return
	}
	if err := p.sendOpen(); err != nil {
		p.armRetry()
		return
	}
	p.setState(StateOpenSent)
	// RFC 4271 §8.2.2: in OpenSent the hold timer runs with a large
	// value (4 minutes suggested) so a half-open session eventually
	// resets and retries.
	guard := 4 * time.Minute
	if p.router.cfg.Timers.HoldTime > guard {
		guard = p.router.cfg.Timers.HoldTime
	}
	if p.holdTimer != nil && p.holdIsGuard {
		p.holdTimer.Reset(guard)
		return
	}
	if p.holdTimer != nil {
		p.holdTimer.Stop()
	}
	p.holdTimer = p.clock().AfterFunc(guard, p.openGuardExpire)
	p.holdIsGuard = true
}

// openGuardExpire is the OpenSent hold-timer callback: a half-open
// session resets and retries.
func (p *Peer) openGuardExpire() { p.reset(true) }

func (p *Peer) armRetry() {
	d := p.router.cfg.Timers.ConnectRetry
	if p.retryTimer != nil {
		p.retryTimer.Reset(d)
		return
	}
	p.retryTimer = p.clock().AfterFunc(d, p.startOpen)
}

func (p *Peer) sendOpen() error {
	r := p.router
	holdSecs := uint16(r.cfg.Timers.HoldTime / time.Second)
	msg := wire.Open{AS: r.cfg.ASN, HoldTimeSecs: holdSecs, ID: r.cfg.RouterID}
	if err := p.send(msg); err != nil {
		return err
	}
	r.stats.OpensSent++
	return nil
}

func (p *Peer) send(m wire.Message) error {
	frame, err := wire.Marshal(m)
	if err != nil {
		return err
	}
	if err := p.cfg.Send(frame); err != nil {
		return err
	}
	p.router.trace(TraceEvent{Kind: TraceSend, Peer: p.cfg.Key, Msg: m})
	return nil
}

// deliver processes one received frame.
func (p *Peer) deliver(frame []byte) {
	if !p.transportUp {
		return
	}
	msg, err := wire.Unmarshal(frame)
	if err != nil {
		if de, ok := err.(*wire.DecodeError); ok {
			_ = p.send(wire.Notification{Code: de.Code, Subcode: de.Subcode})
			p.router.stats.NotificationsSent++
		}
		p.reset(true)
		return
	}
	p.router.trace(TraceEvent{Kind: TraceRecv, Peer: p.cfg.Key, Msg: msg})
	switch m := msg.(type) {
	case wire.Open:
		p.handleOpen(m)
	case wire.Keepalive:
		p.handleKeepalive()
	case wire.Update:
		p.handleUpdate(m)
	case wire.Notification:
		p.reset(true)
	}
}

func (p *Peer) handleOpen(m wire.Open) {
	if m.AS != p.cfg.RemoteASN {
		_ = p.send(wire.Notification{Code: wire.NotifOpenMessageError, Subcode: 2}) // bad peer AS
		p.router.stats.NotificationsSent++
		p.reset(true)
		return
	}
	switch p.state {
	case StateIdle:
		// The neighbor opened first; answer with our OPEN, then
		// confirm.
		if err := p.sendOpen(); err != nil {
			p.armRetry()
			return
		}
	case StateOpenSent:
		// expected
	default:
		// OPEN in OpenConfirm/Established is an FSM error.
		_ = p.send(wire.Notification{Code: wire.NotifFSMError})
		p.router.stats.NotificationsSent++
		p.reset(true)
		return
	}
	p.remoteID = m.ID
	p.remoteASN = m.AS
	p.holdTime = p.router.cfg.Timers.HoldTime
	if remote := time.Duration(m.HoldTimeSecs) * time.Second; remote < p.holdTime {
		p.holdTime = remote
	}
	if err := p.send(wire.Keepalive{}); err != nil {
		p.reset(true)
		return
	}
	p.router.stats.KeepalivesSent++
	p.setState(StateOpenConfirm)
	p.armHoldTimer()
}

func (p *Peer) handleKeepalive() {
	switch p.state {
	case StateOpenConfirm:
		p.establish()
	case StateEstablished:
		p.armHoldTimer()
	default:
		// KEEPALIVE in OpenSent means the neighbor confirmed an OPEN
		// we never managed to deliver (it started after we sent ours).
		// RFC 4271 treats it as an FSM error; resetting both ends lets
		// the retry establish cleanly.
		_ = p.send(wire.Notification{Code: wire.NotifFSMError})
		p.router.stats.NotificationsSent++
		p.reset(true)
	}
}

func (p *Peer) establish() {
	p.setState(StateEstablished)
	p.armHoldTimer()
	p.armKeepalive()
	// Initial routing table dump: schedule every Loc-RIB route.
	for _, rt := range p.router.table.BestRoutes() {
		p.scheduleRoute(rt.Prefix, rt, true, p.router.learnedFromNeighbor(rt))
	}
	// First advertisement batch may go immediately.
	p.nextAdvAllowed = time.Time{}
	p.flushAnnouncements()
}

func (p *Peer) armHoldTimer() {
	if p.holdTime == 0 {
		return // hold time 0 disables keepalives entirely
	}
	// Re-key the existing timer in place when it already runs the
	// negotiated-hold callback — the per-received-message fast path.
	if p.holdTimer != nil && !p.holdIsGuard {
		p.holdTimer.Reset(p.holdTime)
		return
	}
	if p.holdTimer != nil {
		p.holdTimer.Stop()
	}
	p.holdTimer = p.clock().AfterFunc(p.holdTime, p.holdExpire)
	p.holdIsGuard = false
}

// holdExpire is the negotiated hold-timer callback: notify the peer
// and reset.
func (p *Peer) holdExpire() {
	_ = p.send(wire.Notification{Code: wire.NotifHoldTimerExpired})
	p.router.stats.NotificationsSent++
	p.reset(true)
}

func (p *Peer) armKeepalive() {
	if p.holdTime == 0 {
		return
	}
	interval := p.holdTime / time.Duration(p.router.cfg.Timers.KeepaliveFraction)
	if interval <= 0 {
		interval = time.Second
	}
	if p.keepaliveTimer != nil {
		p.keepaliveTimer.Reset(interval)
		return
	}
	p.keepaliveTimer = p.clock().AfterFunc(interval, p.keepaliveFire)
}

// keepaliveFire is the keepalive-timer callback: send one keepalive
// and re-arm for the next interval.
func (p *Peer) keepaliveFire() {
	if p.state != StateEstablished {
		return
	}
	if err := p.send(wire.Keepalive{}); err == nil {
		p.router.stats.KeepalivesSent++
	}
	p.armKeepalive()
}

// handleUpdate runs the inbound side of the decision process.
func (p *Peer) handleUpdate(m wire.Update) {
	if p.state != StateEstablished {
		_ = p.send(wire.Notification{Code: wire.NotifFSMError})
		p.router.stats.NotificationsSent++
		p.reset(true)
		return
	}
	p.armHoldTimer()
	r := p.router
	r.stats.UpdatesReceived++

	for _, prefix := range m.Withdrawn {
		if r.damping != nil {
			r.damping.onWithdraw(p.cfg.Key, prefix)
		}
		change := r.table.WithdrawAdjIn(p.cfg.Key, prefix)
		r.onChange(change)
	}
	if len(m.NLRI) == 0 {
		return
	}
	// Loop prevention (RFC 4271 §9.1.2): a path containing our own ASN
	// makes the route unfeasible. It still implicitly withdraws any
	// previous route for the prefix from this peer — dropping it
	// silently would leave a stale route in the Adj-RIB-In.
	if m.Attrs.ASPath.Contains(r.cfg.ASN) {
		for _, prefix := range m.NLRI {
			change := r.table.WithdrawAdjIn(p.cfg.Key, prefix)
			r.onChange(change)
		}
		return
	}
	// Attribute interning: an UPDATE with a single NLRI prefix (the
	// dominant shape in these emulations) installs the decoded
	// attribute set directly instead of deep-cloning it; only
	// multi-prefix updates clone per route so the routes stay
	// independent. Policies replace attribute fields rather than
	// mutating shared slices (see Policy), which keeps the sharing safe.
	shared := len(m.NLRI) == 1
	for _, prefix := range m.NLRI {
		attrs := m.Attrs
		if !shared {
			attrs = m.Attrs.Clone()
		}
		rt := &rib.Route{
			Prefix:  prefix,
			Attrs:   attrs,
			Peer:    p.cfg.Key,
			PeerASN: p.cfg.RemoteASN,
			PeerID:  p.remoteID,
		}
		// eBGP sessions must not import LOCAL_PREF from the wire.
		rt.Attrs.LocalPref = nil
		if !r.cfg.Policy.Import(p.cfg.Neighbor, rt) {
			// Policy rejection acts as an implicit withdrawal of any
			// previously accepted route for the prefix on this session.
			change := r.table.WithdrawAdjIn(p.cfg.Key, prefix)
			r.onChange(change)
			continue
		}
		if r.damping != nil {
			prev, had := r.table.AdjIn(p.cfg.Key, prefix)
			changed := had && !prev.Attrs.Equal(rt.Attrs)
			if !r.damping.onUpdate(p.cfg.Key, prefix, rt, changed) {
				// Suppressed: hold the route back from the decision
				// process (and flush any pre-suppression install).
				change := r.table.WithdrawAdjIn(p.cfg.Key, prefix)
				r.onChange(change)
				continue
			}
		}
		change := r.table.SetAdjIn(rt)
		r.onChange(change)
	}
}

// scheduleRoute queues the router's best route for prefix toward this
// peer (or its withdrawal), applying export policy and split horizon.
// Called for every material Loc-RIB change and on session
// establishment; the caller resolves the best route (ok false = no
// route) and its learned-from neighbor once for all peers.
func (p *Peer) scheduleRoute(prefix netip.Prefix, best *rib.Route, ok bool, learnedFrom policy.Neighbor) {
	if p.state != StateEstablished {
		return
	}
	r := p.router
	advertise := false
	var attrs wire.PathAttrs
	if ok {
		switch {
		case best.Peer == p.cfg.Key:
			// Split horizon: never advertise a route back to the
			// session it came from.
		case !r.cfg.Policy.Export(p.cfg.Neighbor, learnedFrom, best):
			// Export policy rejects.
		default:
			advertise = true
			attrs = r.exportAttrs(p, best)
		}
	}
	if advertise {
		if prev, had := r.adjOut.Get(p.cfg.Key, prefix); had && prev.Equal(attrs) {
			// Identical to what the peer already has; and cancel any
			// pending contrary state.
			delete(p.pendingAnnounce, prefix)
			delete(p.pendingWithdraw, prefix)
			return
		}
		p.pendingAnnounce[prefix] = attrs
		delete(p.pendingWithdraw, prefix)
		p.scheduleFlush()
		return
	}
	// Withdraw if the peer currently has (or is about to get) it.
	delete(p.pendingAnnounce, prefix)
	if _, had := r.adjOut.Get(p.cfg.Key, prefix); had {
		p.pendingWithdraw[prefix] = true
		if r.cfg.Timers.WithdrawalsImmediate {
			p.flushWithdrawals()
		} else {
			p.scheduleFlush()
		}
	}
}

// flushWithdrawals sends all pending withdrawals immediately
// (withdrawals are not MRAI-limited).
func (p *Peer) flushWithdrawals() {
	if p.state != StateEstablished || len(p.pendingWithdraw) == 0 {
		return
	}
	r := p.router
	prefixes := make([]netip.Prefix, 0, len(p.pendingWithdraw))
	for prefix := range p.pendingWithdraw {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return idr.PrefixLess(prefixes[i], prefixes[j]) })
	p.pendingWithdraw = make(map[netip.Prefix]bool)
	for _, prefix := range prefixes {
		r.adjOut.Delete(p.cfg.Key, prefix)
	}
	if err := p.send(wire.Update{Withdrawn: prefixes}); err != nil {
		return
	}
	r.stats.UpdatesSent++
	r.stats.PrefixesWithdrawn += uint64(len(prefixes))
}

// effectiveMRAI samples the (possibly jittered) advertisement interval.
func (p *Peer) effectiveMRAI() time.Duration {
	t := p.router.cfg.Timers
	if t.MRAI <= 0 {
		return 0
	}
	if !t.MRAIJitter {
		return t.MRAI
	}
	// Uniform in [0.75, 1.0) * MRAI (RFC 4271 §9.2.2.3).
	f := 0.75 + 0.25*p.router.cfg.Rand.Float64()
	return time.Duration(float64(t.MRAI) * f)
}

// scheduleFlush arms the MRAI timer for the next update batch.
func (p *Peer) scheduleFlush() {
	if len(p.pendingAnnounce) == 0 && len(p.pendingWithdraw) == 0 {
		return
	}
	if p.mraiTimer != nil && p.mraiTimer.Active() {
		return
	}
	now := p.clock().Now()
	delay := time.Duration(0)
	if p.nextAdvAllowed.After(now) {
		delay = p.nextAdvAllowed.Sub(now)
	}
	if p.mraiTimer != nil {
		p.mraiTimer.Reset(delay)
		return
	}
	p.mraiTimer = p.clock().AfterFunc(delay, p.flushAnnouncements)
}

// flushAnnouncements sends the pending update batch: first the
// withdrawals (unless already flushed immediately), then the
// announcements grouped by identical attributes.
func (p *Peer) flushAnnouncements() {
	if p.state != StateEstablished {
		return
	}
	sentWithdrawals := len(p.pendingWithdraw) > 0
	p.flushWithdrawals()
	if len(p.pendingAnnounce) == 0 {
		if sentWithdrawals {
			p.nextAdvAllowed = p.clock().Now().Add(p.effectiveMRAI())
		}
		return
	}
	r := p.router
	// Group prefixes by identical attributes for honest UPDATE packing.
	// Scanning the pending prefixes in address order and comparing
	// attribute sets structurally keeps the grouping deterministic
	// without rendering attrs.String() once per prefix; the final
	// emission order (sorted by the attribute rendering) matches the
	// historical encoder exactly, with address order breaking ties.
	type group struct {
		attrs    wire.PathAttrs
		key      string
		prefixes []netip.Prefix
	}
	prefixes := make([]netip.Prefix, 0, len(p.pendingAnnounce))
	for prefix := range p.pendingAnnounce {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return idr.PrefixLess(prefixes[i], prefixes[j]) })
	var groups []*group
	for _, prefix := range prefixes {
		attrs := p.pendingAnnounce[prefix]
		var g *group
		for _, have := range groups {
			if have.attrs.Equal(attrs) {
				g = have
				break
			}
		}
		if g == nil {
			g = &group{attrs: attrs}
			groups = append(groups, g)
		}
		g.prefixes = append(g.prefixes, prefix)
	}
	if len(groups) > 1 {
		for _, g := range groups {
			g.key = g.attrs.String()
		}
		sort.SliceStable(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	}
	p.pendingAnnounce = make(map[netip.Prefix]wire.PathAttrs)
	for _, g := range groups {
		for _, prefix := range g.prefixes {
			r.adjOut.Set(p.cfg.Key, prefix, g.attrs)
		}
		if err := p.send(wire.Update{Attrs: g.attrs, NLRI: g.prefixes}); err != nil {
			return
		}
		r.stats.UpdatesSent++
		r.stats.PrefixesAnnounced += uint64(len(g.prefixes))
	}
	p.nextAdvAllowed = p.clock().Now().Add(p.effectiveMRAI())
}

// reset tears the session down. When reconnect is true and the
// transport is still up, re-establishment is retried after
// ConnectRetry.
func (p *Peer) reset(reconnect bool) {
	r := p.router
	wasEstablished := p.state == StateEstablished
	if p.state != StateIdle {
		r.stats.SessionResets++
	}
	p.setState(StateIdle)
	for _, t := range []sim.Timer{p.holdTimer, p.keepaliveTimer, p.mraiTimer, p.retryTimer} {
		if t != nil {
			t.Stop()
		}
	}
	p.holdTimer, p.keepaliveTimer, p.mraiTimer, p.retryTimer = nil, nil, nil, nil
	p.holdIsGuard = false
	p.pendingAnnounce = make(map[netip.Prefix]wire.PathAttrs)
	p.pendingWithdraw = make(map[netip.Prefix]bool)
	p.nextAdvAllowed = time.Time{}
	p.remoteID = idr.RouterID{}
	p.remoteASN = 0

	// Flush learned and advertised state; propagate the fallout. Flap
	// history does not survive a session reset (held-back routes would
	// be stale).
	if r.damping != nil {
		//lint:maporder Stop only deletes pending timer events; the surviving event set is the same in any order
		for _, s := range r.damping.state[p.cfg.Key] {
			if s.reuseTimer != nil {
				s.reuseTimer.Stop()
			}
		}
		delete(r.damping.state, p.cfg.Key)
	}
	r.adjOut.DropPeer(p.cfg.Key)
	if wasEstablished {
		for _, change := range r.table.DropPeer(p.cfg.Key) {
			r.onChange(change)
		}
	}
	if reconnect && p.transportUp {
		p.armRetry()
	}
}
