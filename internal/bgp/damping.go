package bgp

import (
	"math"
	"net/netip"
	"time"

	"repro/internal/bgp/rib"
	"repro/internal/sim"
)

// DampingConfig enables RFC 2439 route-flap damping, BGP's native
// stability mechanism (Quagga ships it as `bgp dampening`). It is the
// distributed counterpart to the paper's centralized delayed
// recomputation: both rate-limit flaps, but damping punishes
// individual routes at every router while the controller batches its
// own decisions. The zero value of each field selects the listed
// default.
type DampingConfig struct {
	// WithdrawPenalty is added on each withdrawal flap (default 1000).
	WithdrawPenalty float64
	// UpdatePenalty is added on each re-advertisement with changed
	// attributes (default 500).
	UpdatePenalty float64
	// SuppressThreshold starts suppressing the route (default 2000).
	SuppressThreshold float64
	// ReuseThreshold reinstates a suppressed route once the decayed
	// penalty falls below it (default 750).
	ReuseThreshold float64
	// HalfLife is the exponential decay half-life (default 15 min).
	HalfLife time.Duration
	// MaxSuppress caps the suppression time (default 60 min); the
	// penalty is clipped so a route is never suppressed longer.
	MaxSuppress time.Duration
}

// Resolved returns the configuration with every zero field replaced
// by its documented default — the exact values a router configured
// with c runs with. Callers that need a stable, fully-specified echo
// of the damping parameters (the canonical spec serialization behind
// the artifact store) use this instead of duplicating the defaults.
func (c DampingConfig) Resolved() DampingConfig {
	c.setDefaults()
	return c
}

func (c *DampingConfig) setDefaults() {
	if c.WithdrawPenalty == 0 {
		c.WithdrawPenalty = 1000
	}
	if c.UpdatePenalty == 0 {
		c.UpdatePenalty = 500
	}
	if c.SuppressThreshold == 0 {
		c.SuppressThreshold = 2000
	}
	if c.ReuseThreshold == 0 {
		c.ReuseThreshold = 750
	}
	if c.HalfLife == 0 {
		c.HalfLife = 15 * time.Minute
	}
	if c.MaxSuppress == 0 {
		c.MaxSuppress = time.Hour
	}
}

// maxPenalty is the ceiling implied by MaxSuppress: a penalty that
// would take longer than MaxSuppress to decay to the reuse threshold
// is clipped.
func (c *DampingConfig) maxPenalty() float64 {
	halfLives := float64(c.MaxSuppress) / float64(c.HalfLife)
	return c.ReuseThreshold * math.Pow(2, halfLives)
}

// dampState tracks one (session, prefix) flap history.
type dampState struct {
	penalty    float64
	updatedAt  time.Time
	suppressed bool
	// latest holds the most recent advertised route while suppressed,
	// so reuse can reinstate it.
	latest     *rib.Route
	reuseTimer sim.Timer
}

// decayedPenalty returns the penalty decayed to now.
func (d *dampState) decayedPenalty(cfg *DampingConfig, now time.Time) float64 {
	dt := now.Sub(d.updatedAt)
	if dt <= 0 {
		return d.penalty
	}
	halfLives := float64(dt) / float64(cfg.HalfLife)
	return d.penalty * math.Pow(0.5, halfLives)
}

// damping is the per-router damping engine.
type damping struct {
	cfg    DampingConfig
	router *Router
	state  map[rib.PeerKey]map[netip.Prefix]*dampState
}

func newDamping(cfg DampingConfig, r *Router) *damping {
	cfg.setDefaults()
	return &damping{
		cfg:    cfg,
		router: r,
		state:  make(map[rib.PeerKey]map[netip.Prefix]*dampState),
	}
}

func (d *damping) get(peer rib.PeerKey, prefix netip.Prefix) *dampState {
	m := d.state[peer]
	if m == nil {
		m = make(map[netip.Prefix]*dampState)
		d.state[peer] = m
	}
	s := m[prefix]
	if s == nil {
		s = &dampState{updatedAt: d.router.cfg.Clock.Now()}
		m[prefix] = s
	}
	return s
}

// penalize records a flap and returns the new decayed penalty.
func (d *damping) penalize(peer rib.PeerKey, prefix netip.Prefix, penalty float64) *dampState {
	now := d.router.cfg.Clock.Now()
	s := d.get(peer, prefix)
	p := s.decayedPenalty(&d.cfg, now) + penalty
	if max := d.cfg.maxPenalty(); p > max {
		p = max
	}
	s.penalty = p
	s.updatedAt = now
	return s
}

// onWithdraw records a withdrawal flap. A withdrawal of a suppressed
// route simply clears the stored reinstate candidate.
func (d *damping) onWithdraw(peer rib.PeerKey, prefix netip.Prefix) {
	s := d.penalize(peer, prefix, d.cfg.WithdrawPenalty)
	s.latest = nil
}

// onUpdate decides the fate of a newly received route: returned true
// means "install normally"; false means the route is suppressed (held
// back from the decision process).
func (d *damping) onUpdate(peer rib.PeerKey, prefix netip.Prefix, rt *rib.Route, changed bool) bool {
	now := d.router.cfg.Clock.Now()
	s := d.get(peer, prefix)
	if changed {
		s = d.penalize(peer, prefix, d.cfg.UpdatePenalty)
	}
	p := s.decayedPenalty(&d.cfg, now)
	if s.suppressed || p >= d.cfg.SuppressThreshold {
		d.suppress(peer, prefix, s, rt, p)
		return false
	}
	return true
}

// suppress holds rt back and schedules reuse once the penalty decays.
func (d *damping) suppress(peer rib.PeerKey, prefix netip.Prefix, s *dampState, rt *rib.Route, penalty float64) {
	s.suppressed = true
	s.latest = rt
	// Time until penalty decays to the reuse threshold.
	ratio := penalty / d.cfg.ReuseThreshold
	if ratio < 1 {
		ratio = 1
	}
	wait := time.Duration(float64(d.cfg.HalfLife) * math.Log2(ratio))
	if wait > d.cfg.MaxSuppress {
		wait = d.cfg.MaxSuppress
	}
	if wait < time.Second {
		wait = time.Second
	}
	// The reuse callback is identical for the lifetime of a dampState
	// (it closes over the fixed peer/prefix/s triple), so repeated
	// suppressions re-key the existing timer in place.
	if s.reuseTimer != nil {
		s.reuseTimer.Reset(wait)
		return
	}
	s.reuseTimer = d.router.cfg.Clock.AfterFunc(wait, func() {
		d.reuse(peer, prefix, s)
	})
}

// reuse reinstates the held-back route after decay.
func (d *damping) reuse(peer rib.PeerKey, prefix netip.Prefix, s *dampState) {
	if !s.suppressed {
		return
	}
	s.suppressed = false
	if s.latest == nil {
		return // withdrawn while suppressed: nothing to reinstate
	}
	rt := s.latest
	s.latest = nil
	change := d.router.table.SetAdjIn(rt)
	d.router.onChange(change)
}

// Suppressed reports whether the (peer, prefix) route is currently
// damped (monitoring/test hook).
func (r *Router) Suppressed(peer rib.PeerKey, prefix netip.Prefix) bool {
	if r.damping == nil {
		return false
	}
	if m := r.damping.state[peer]; m != nil {
		if s := m[prefix]; s != nil {
			return s.suppressed
		}
	}
	return false
}

// DampingPenalty returns the current decayed penalty for the
// (peer, prefix) pair, or 0 when damping is off.
func (r *Router) DampingPenalty(peer rib.PeerKey, prefix netip.Prefix) float64 {
	if r.damping == nil {
		return 0
	}
	if m := r.damping.state[peer]; m != nil {
		if s := m[prefix]; s != nil {
			return s.decayedPenalty(&r.damping.cfg, r.cfg.Clock.Now())
		}
	}
	return 0
}
