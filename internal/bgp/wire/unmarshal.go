package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"repro/internal/idr"
)

// DecodeError describes a malformed message and carries the
// NOTIFICATION code/subcode a conforming speaker must send in response
// (RFC 4271 §6).
type DecodeError struct {
	Code    uint8
	Subcode uint8
	Reason  string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: %s (notify %d/%d)", e.Reason, e.Code, e.Subcode)
}

func decodeErr(code, subcode uint8, format string, args ...any) *DecodeError {
	return &DecodeError{Code: code, Subcode: subcode, Reason: fmt.Sprintf(format, args...)}
}

// Unmarshal decodes one complete BGP message (header included).
func Unmarshal(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return nil, decodeErr(NotifMessageHeaderError, 2, "short message: %d bytes", len(b))
	}
	for i := 0; i < MarkerLen; i++ {
		if b[i] != 0xFF {
			return nil, decodeErr(NotifMessageHeaderError, 1, "marker byte %d is %#x", i, b[i])
		}
	}
	length := int(binary.BigEndian.Uint16(b[MarkerLen:]))
	if length < HeaderLen || length > MaxMsgLen || length != len(b) {
		return nil, decodeErr(NotifMessageHeaderError, 2, "bad length %d for %d-byte buffer", length, len(b))
	}
	typ := MsgType(b[MarkerLen+2])
	body := b[HeaderLen:]
	switch typ {
	case MsgOpen:
		return unmarshalOpen(body)
	case MsgUpdate:
		return unmarshalUpdate(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, decodeErr(NotifMessageHeaderError, 2, "keepalive with %d-byte body", len(body))
		}
		return Keepalive{}, nil
	case MsgNotification:
		if len(body) < 2 {
			return nil, decodeErr(NotifMessageHeaderError, 2, "notification body %d bytes", len(body))
		}
		return Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	default:
		return nil, decodeErr(NotifMessageHeaderError, 3, "unknown message type %d", typ)
	}
}

func unmarshalOpen(body []byte) (Message, error) {
	if len(body) < 10 {
		return nil, decodeErr(NotifOpenMessageError, 0, "open body %d bytes", len(body))
	}
	if body[0] != Version {
		return nil, decodeErr(NotifOpenMessageError, 1, "unsupported version %d", body[0])
	}
	o := Open{
		AS:           idr.ASN(binary.BigEndian.Uint16(body[1:])),
		HoldTimeSecs: binary.BigEndian.Uint16(body[3:]),
	}
	if o.HoldTimeSecs != 0 && o.HoldTimeSecs < 3 {
		return nil, decodeErr(NotifOpenMessageError, 6, "hold time %d", o.HoldTimeSecs)
	}
	copy(o.ID[:], body[5:9])
	optLen := int(body[9])
	opt := body[10:]
	if len(opt) != optLen {
		return nil, decodeErr(NotifOpenMessageError, 0, "optional parameters: have %d bytes, header says %d", len(opt), optLen)
	}
	for len(opt) > 0 {
		if len(opt) < 2 {
			return nil, decodeErr(NotifOpenMessageError, 0, "truncated optional parameter")
		}
		ptype, plen := opt[0], int(opt[1])
		if len(opt) < 2+plen {
			return nil, decodeErr(NotifOpenMessageError, 0, "optional parameter overruns message")
		}
		pval := opt[2 : 2+plen]
		opt = opt[2+plen:]
		if ptype != 2 {
			continue // unknown parameter types are skipped
		}
		// Capabilities parameter: a sequence of TLVs.
		for len(pval) > 0 {
			if len(pval) < 2 {
				return nil, decodeErr(NotifOpenMessageError, 0, "truncated capability")
			}
			code, clen := pval[0], int(pval[1])
			if len(pval) < 2+clen {
				return nil, decodeErr(NotifOpenMessageError, 0, "capability overruns parameter")
			}
			val := append([]byte(nil), pval[2:2+clen]...)
			pval = pval[2+clen:]
			if code == CapFourOctetAS {
				if clen != 4 {
					return nil, decodeErr(NotifOpenMessageError, 0, "four-octet-AS capability length %d", clen)
				}
				o.AS = idr.ASN(binary.BigEndian.Uint32(val))
				continue
			}
			o.Capabilities = append(o.Capabilities, Capability{Code: code, Value: val})
		}
	}
	return o, nil
}

func unmarshalUpdate(body []byte) (Message, error) {
	if len(body) < 4 {
		return nil, decodeErr(NotifUpdateMessageError, 1, "update body %d bytes", len(body))
	}
	wlen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+wlen+2 {
		return nil, decodeErr(NotifUpdateMessageError, 1, "withdrawn length %d overruns message", wlen)
	}
	withdrawn, err := unmarshalPrefixes(body[2 : 2+wlen])
	if err != nil {
		return nil, decodeErr(NotifUpdateMessageError, 10, "withdrawn routes: %v", err)
	}
	rest := body[2+wlen:]
	alen := int(binary.BigEndian.Uint16(rest))
	if len(rest) < 2+alen {
		return nil, decodeErr(NotifUpdateMessageError, 1, "attribute length %d overruns message", alen)
	}
	attrs, err := unmarshalAttrs(rest[2 : 2+alen])
	if err != nil {
		return nil, err
	}
	nlri, err := unmarshalPrefixes(rest[2+alen:])
	if err != nil {
		return nil, decodeErr(NotifUpdateMessageError, 10, "nlri: %v", err)
	}
	u := Update{Withdrawn: withdrawn, NLRI: nlri}
	if attrs != nil {
		u.Attrs = attrs.PathAttrs
	}
	if len(nlri) > 0 {
		// Mandatory attribute checks (RFC 4271 §6.3).
		if attrs == nil || !attrs.seenOrigin {
			return nil, decodeErr(NotifUpdateMessageError, 3, "missing ORIGIN")
		}
		if !attrs.seenASPath {
			return nil, decodeErr(NotifUpdateMessageError, 3, "missing AS_PATH")
		}
		if !attrs.seenNextHop {
			return nil, decodeErr(NotifUpdateMessageError, 3, "missing NEXT_HOP")
		}
	}
	return u, nil
}

func unmarshalPrefixes(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("prefix length %d > 32", bits)
		}
		nbytes := (bits + 7) / 8
		if len(b) < 1+nbytes {
			return nil, fmt.Errorf("prefix field truncated")
		}
		var b4 [4]byte
		copy(b4[:], b[1:1+nbytes])
		p := netip.PrefixFrom(netip.AddrFrom4(b4), bits)
		// Reject garbage bits beyond the prefix length: require
		// canonical encoding so equal prefixes compare equal.
		if p.Masked() != p {
			return nil, fmt.Errorf("prefix %v has host bits set", p)
		}
		out = append(out, p)
		b = b[1+nbytes:]
	}
	return out, nil
}

type decodedAttrs struct {
	PathAttrs
	seenOrigin, seenASPath, seenNextHop bool
}

func unmarshalAttrs(b []byte) (*decodedAttrs, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var a decodedAttrs
	seen := map[uint8]bool{}
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, decodeErr(NotifUpdateMessageError, 1, "truncated attribute header")
		}
		flags, typ := b[0], b[1]
		var vlen, hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, decodeErr(NotifUpdateMessageError, 1, "truncated extended attribute header")
			}
			vlen = int(binary.BigEndian.Uint16(b[2:]))
			hdr = 4
		} else {
			vlen = int(b[2])
			hdr = 3
		}
		if len(b) < hdr+vlen {
			return nil, decodeErr(NotifUpdateMessageError, 5, "attribute %d overruns message", typ)
		}
		val := b[hdr : hdr+vlen]
		b = b[hdr+vlen:]
		if seen[typ] {
			return nil, decodeErr(NotifUpdateMessageError, 1, "duplicate attribute %d", typ)
		}
		seen[typ] = true
		switch typ {
		case AttrOrigin:
			if vlen != 1 || val[0] > uint8(OriginIncomplete) {
				return nil, decodeErr(NotifUpdateMessageError, 6, "bad ORIGIN")
			}
			a.Origin = Origin(val[0])
			a.seenOrigin = true
		case AttrASPath:
			path, err := unmarshalASPath(val)
			if err != nil {
				return nil, decodeErr(NotifUpdateMessageError, 11, "AS_PATH: %v", err)
			}
			a.ASPath = path
			a.seenASPath = true
		case AttrNextHop:
			if vlen != 4 {
				return nil, decodeErr(NotifUpdateMessageError, 8, "NEXT_HOP length %d", vlen)
			}
			var b4 [4]byte
			copy(b4[:], val)
			a.NextHop = netip.AddrFrom4(b4)
			a.seenNextHop = true
		case AttrMED:
			if vlen != 4 {
				return nil, decodeErr(NotifUpdateMessageError, 5, "MED length %d", vlen)
			}
			v := binary.BigEndian.Uint32(val)
			a.MED = &v
		case AttrLocalPref:
			if vlen != 4 {
				return nil, decodeErr(NotifUpdateMessageError, 5, "LOCAL_PREF length %d", vlen)
			}
			v := binary.BigEndian.Uint32(val)
			a.LocalPref = &v
		case AttrAtomicAggregate:
			if vlen != 0 {
				return nil, decodeErr(NotifUpdateMessageError, 5, "ATOMIC_AGGREGATE length %d", vlen)
			}
			a.AtomicAggregate = true
		case AttrAggregator:
			if vlen != 8 {
				return nil, decodeErr(NotifUpdateMessageError, 5, "AGGREGATOR length %d", vlen)
			}
			var b4 [4]byte
			copy(b4[:], val[4:8])
			a.Aggregator = &Aggregator{
				AS: idr.ASN(binary.BigEndian.Uint32(val)),
				ID: netip.AddrFrom4(b4),
			}
		case AttrCommunities:
			if vlen%4 != 0 {
				return nil, decodeErr(NotifUpdateMessageError, 5, "COMMUNITIES length %d", vlen)
			}
			for i := 0; i < vlen; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(val[i:])))
			}
		default:
			// Unrecognized optional attributes are tolerated
			// (transit behaviour is out of scope); unrecognized
			// well-known attributes are an error.
			if flags&flagOptional == 0 {
				return nil, decodeErr(NotifUpdateMessageError, 2, "unrecognized well-known attribute %d", typ)
			}
		}
	}
	return &a, nil
}

func unmarshalASPath(b []byte) (ASPath, error) {
	var path ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("truncated segment header")
		}
		st, n := SegType(b[0]), int(b[1])
		if st != ASSet && st != ASSequence {
			return nil, fmt.Errorf("bad segment type %d", st)
		}
		if n == 0 {
			return nil, fmt.Errorf("empty segment")
		}
		if len(b) < 2+4*n {
			return nil, fmt.Errorf("segment overruns attribute")
		}
		seg := Segment{Type: st, ASNs: make([]idr.ASN, n)}
		for i := 0; i < n; i++ {
			seg.ASNs[i] = idr.ASN(binary.BigEndian.Uint32(b[2+4*i:]))
		}
		path = append(path, seg)
		b = b[2+4*n:]
	}
	return path, nil
}

// ReadMessage reads exactly one BGP message from a byte stream (for
// the wall-clock TCP mode). It returns the raw frame including the
// header; pass it to Unmarshal.
func ReadMessage(r io.Reader) ([]byte, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[MarkerLen:]))
	if length < HeaderLen || length > MaxMsgLen {
		return nil, decodeErr(NotifMessageHeaderError, 2, "bad length %d in stream", length)
	}
	frame := make([]byte, length)
	copy(frame, hdr)
	if _, err := io.ReadFull(r, frame[HeaderLen:]); err != nil {
		return nil, err
	}
	return frame, nil
}
