// Package wire implements BGP-4 message encoding and decoding per
// RFC 4271, with the 4-octet AS number extension (RFC 6793) always
// negotiated and COMMUNITIES (RFC 1997). The framework's routers, the
// cluster BGP speaker and the route collector all exchange byte-exact
// wire messages produced by this package, standing in for the Quagga
// and ExaBGP processes of the paper's stack.
package wire

import (
	"fmt"
	"net/netip"

	"repro/internal/idr"
)

// MsgType is the BGP message type octet (RFC 4271 §4.1).
type MsgType uint8

// BGP message types.
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Wire size constants (RFC 4271 §4.1).
const (
	MarkerLen  = 16
	HeaderLen  = 19
	MaxMsgLen  = 4096
	minOpenLen = HeaderLen + 10
)

// Version is the only supported BGP version.
const Version = 4

// ASTrans is the 2-octet placeholder AS used in the OPEN "My
// Autonomous System" field when the real ASN needs 4 octets
// (RFC 6793).
const ASTrans uint16 = 23456

// Message is one decoded BGP message.
type Message interface {
	// Type returns the message's wire type.
	Type() MsgType
}

// Open is the BGP OPEN message (RFC 4271 §4.2).
type Open struct {
	// AS is the sender's real (4-octet) AS number. On the wire the
	// 2-octet field carries the number directly when it fits, or
	// ASTrans plus a Four-Octet-AS capability otherwise; decoding
	// folds the capability back into this field.
	AS idr.ASN
	// HoldTimeSecs is the proposed hold time in seconds (0 or >= 3).
	HoldTimeSecs uint16
	// ID is the sender's BGP identifier.
	ID idr.RouterID
	// Capabilities carries the decoded capabilities advertisement
	// (RFC 5492) other than Four-Octet-AS, which is implicit.
	Capabilities []Capability
}

// Type implements Message.
func (Open) Type() MsgType { return MsgOpen }

// Capability is one RFC 5492 capability TLV.
type Capability struct {
	Code  uint8
	Value []byte
}

// Capability codes used by this implementation.
const (
	CapFourOctetAS  uint8 = 65
	CapRouteRefresh uint8 = 2
)

// Update is the BGP UPDATE message (RFC 4271 §4.3).
type Update struct {
	// Withdrawn lists prefixes no longer reachable via the sender.
	Withdrawn []netip.Prefix
	// Attrs carries the path attributes; meaningful only when NLRI is
	// non-empty.
	Attrs PathAttrs
	// NLRI lists prefixes reachable with Attrs.
	NLRI []netip.Prefix
}

// Type implements Message.
func (Update) Type() MsgType { return MsgUpdate }

// Keepalive is the BGP KEEPALIVE message (header only).
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() MsgType { return MsgKeepalive }

// Notification is the BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (Notification) Type() MsgType { return MsgNotification }

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMessageHeaderError uint8 = 1
	NotifOpenMessageError   uint8 = 2
	NotifUpdateMessageError uint8 = 3
	NotifHoldTimerExpired   uint8 = 4
	NotifFSMError           uint8 = 5
	NotifCease              uint8 = 6
)

// Error implements error so a received NOTIFICATION can be returned
// directly up the stack.
func (n Notification) Error() string {
	return fmt.Sprintf("bgp notification: code %d subcode %d", n.Code, n.Subcode)
}

// String renders the notification for logs.
func (n Notification) String() string { return n.Error() }
