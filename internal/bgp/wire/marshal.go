package wire

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"repro/internal/idr"
)

// Marshal encodes one BGP message, header included. The body is
// appended directly after a reserved header and the length fixed up
// afterwards, so the hot UPDATE path performs a single allocation
// instead of building intermediate withdrawn/attribute/NLRI slices.
func Marshal(m Message) ([]byte, error) {
	out := make([]byte, HeaderLen, HeaderLen+estimateBody(m))
	for i := 0; i < MarkerLen; i++ {
		out[i] = 0xFF
	}
	var err error
	switch v := m.(type) {
	case Open:
		out, err = appendOpen(out, v)
	case *Open:
		out, err = appendOpen(out, *v)
	case Update:
		out, err = appendUpdate(out, v)
	case *Update:
		out, err = appendUpdate(out, *v)
	case Keepalive, *Keepalive:
	case Notification:
		out, err = appendNotification(out, v)
	case *Notification:
		out, err = appendNotification(out, *v)
	default:
		return nil, fmt.Errorf("wire: unknown message type %T", m)
	}
	if err != nil {
		return nil, err
	}
	if len(out) > MaxMsgLen {
		return nil, fmt.Errorf("wire: message length %d exceeds %d", len(out), MaxMsgLen)
	}
	binary.BigEndian.PutUint16(out[MarkerLen:], uint16(len(out)))
	out[MarkerLen+2] = byte(m.Type())
	return out, nil
}

// estimateBody sizes the initial buffer so typical messages marshal
// without regrowth; an undershoot only costs an append reallocation.
func estimateBody(m Message) int {
	switch v := m.(type) {
	case Update:
		return estimateUpdate(v)
	case *Update:
		return estimateUpdate(*v)
	case Open, *Open:
		return 64
	default:
		return 16
	}
}

func estimateUpdate(u Update) int {
	n := 4 + 5*(len(u.Withdrawn)+len(u.NLRI))
	if len(u.NLRI) > 0 {
		n += 32 + 4*u.Attrs.ASPath.Length() + 4*len(u.Attrs.Communities)
	}
	return n
}

func appendOpen(out []byte, o Open) ([]byte, error) {
	body, err := marshalOpen(o)
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

func marshalOpen(o Open) ([]byte, error) {
	if o.HoldTimeSecs != 0 && o.HoldTimeSecs < 3 {
		return nil, fmt.Errorf("wire: open hold time %d (must be 0 or >= 3)", o.HoldTimeSecs)
	}
	// Capabilities: always advertise Four-Octet-AS with the real ASN
	// (RFC 6793), plus any caller-provided capabilities.
	caps := make([]Capability, 0, len(o.Capabilities)+1)
	four := make([]byte, 4)
	binary.BigEndian.PutUint32(four, uint32(o.AS))
	caps = append(caps, Capability{Code: CapFourOctetAS, Value: four})
	for _, c := range o.Capabilities {
		if c.Code == CapFourOctetAS {
			continue // implicit, never duplicated
		}
		caps = append(caps, c)
	}
	var opt []byte
	for _, c := range caps {
		if len(c.Value) > 255-2 {
			return nil, fmt.Errorf("wire: capability %d value too long", c.Code)
		}
		// Optional parameter type 2 (capabilities), one per parameter.
		param := make([]byte, 0, 4+len(c.Value))
		param = append(param, 2, byte(2+len(c.Value)), c.Code, byte(len(c.Value)))
		param = append(param, c.Value...)
		opt = append(opt, param...)
	}
	if len(opt) > 255 {
		return nil, fmt.Errorf("wire: optional parameters length %d > 255", len(opt))
	}
	body := make([]byte, 0, 10+len(opt))
	body = append(body, Version)
	myAS := uint16(ASTrans)
	if o.AS <= 0xFFFF {
		myAS = uint16(o.AS)
	}
	body = binary.BigEndian.AppendUint16(body, myAS)
	body = binary.BigEndian.AppendUint16(body, o.HoldTimeSecs)
	body = append(body, o.ID[:]...)
	body = append(body, byte(len(opt)))
	body = append(body, opt...)
	return body, nil
}

func appendNotification(out []byte, n Notification) ([]byte, error) {
	out = append(out, n.Code, n.Subcode)
	return append(out, n.Data...), nil
}

func appendUpdate(out []byte, u Update) ([]byte, error) {
	wlenAt := len(out)
	out = append(out, 0, 0)
	out, err := appendPrefixes(out, u.Withdrawn)
	if err != nil {
		return nil, fmt.Errorf("wire: withdrawn routes: %w", err)
	}
	binary.BigEndian.PutUint16(out[wlenAt:], uint16(len(out)-wlenAt-2))
	alenAt := len(out)
	out = append(out, 0, 0)
	if len(u.NLRI) > 0 {
		out, err = appendAttrs(out, u.Attrs)
		if err != nil {
			return nil, err
		}
	}
	binary.BigEndian.PutUint16(out[alenAt:], uint16(len(out)-alenAt-2))
	out, err = appendPrefixes(out, u.NLRI)
	if err != nil {
		return nil, fmt.Errorf("wire: nlri: %w", err)
	}
	return out, nil
}

func appendPrefixes(out []byte, ps []netip.Prefix) ([]byte, error) {
	for _, p := range ps {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("prefix %v is not IPv4", p)
		}
		if p.Bits() < 0 {
			return nil, fmt.Errorf("prefix %v has invalid length", p)
		}
		out = append(out, byte(p.Bits()))
		b4 := p.Addr().As4()
		out = append(out, b4[:(p.Bits()+7)/8]...)
	}
	return out, nil
}

// appendAttrHeader writes one path-attribute header for a value of
// vlen bytes; the caller appends the value bytes in place afterwards.
func appendAttrHeader(out []byte, flags, typ uint8, vlen int) ([]byte, error) {
	if vlen > 0xFFFF {
		return nil, fmt.Errorf("wire: attribute %d too long (%d)", typ, vlen)
	}
	if vlen > 0xFF {
		flags |= flagExtLen
		out = append(out, flags, typ)
		return binary.BigEndian.AppendUint16(out, uint16(vlen)), nil
	}
	return append(out, flags, typ, byte(vlen)), nil
}

func appendAttrs(out []byte, a PathAttrs) ([]byte, error) {
	var err error

	// ORIGIN: well-known mandatory.
	if a.Origin > OriginIncomplete {
		return nil, fmt.Errorf("wire: invalid origin %d", a.Origin)
	}
	out, err = appendAttrHeader(out, flagTransitive, AttrOrigin, 1)
	if err != nil {
		return nil, err
	}
	out = append(out, byte(a.Origin))

	// AS_PATH: well-known mandatory; 4-octet ASNs (RFC 6793 encoding
	// on a session with the Four-Octet-AS capability).
	pathLen := 0
	for _, s := range a.ASPath {
		if s.Type != ASSet && s.Type != ASSequence {
			return nil, fmt.Errorf("wire: invalid AS_PATH segment type %d", s.Type)
		}
		if len(s.ASNs) == 0 || len(s.ASNs) > 255 {
			return nil, fmt.Errorf("wire: AS_PATH segment with %d ASNs", len(s.ASNs))
		}
		pathLen += 2 + 4*len(s.ASNs)
	}
	out, err = appendAttrHeader(out, flagTransitive, AttrASPath, pathLen)
	if err != nil {
		return nil, err
	}
	for _, s := range a.ASPath {
		out = append(out, byte(s.Type), byte(len(s.ASNs)))
		for _, asn := range s.ASNs {
			out = binary.BigEndian.AppendUint32(out, uint32(asn))
		}
	}

	// NEXT_HOP: well-known mandatory.
	if !a.NextHop.Is4() {
		return nil, fmt.Errorf("wire: next hop %v is not IPv4", a.NextHop)
	}
	out, err = appendAttrHeader(out, flagTransitive, AttrNextHop, 4)
	if err != nil {
		return nil, err
	}
	nh := a.NextHop.As4()
	out = append(out, nh[:]...)

	if a.MED != nil {
		out, err = appendAttrHeader(out, flagOptional, AttrMED, 4)
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, *a.MED)
	}
	if a.LocalPref != nil {
		out, err = appendAttrHeader(out, flagTransitive, AttrLocalPref, 4)
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, *a.LocalPref)
	}
	if a.AtomicAggregate {
		out, err = appendAttrHeader(out, flagTransitive, AttrAtomicAggregate, 0)
		if err != nil {
			return nil, err
		}
	}
	if a.Aggregator != nil {
		if !a.Aggregator.ID.Is4() {
			return nil, fmt.Errorf("wire: aggregator ID %v is not IPv4", a.Aggregator.ID)
		}
		out, err = appendAttrHeader(out, flagOptional|flagTransitive, AttrAggregator, 8)
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, uint32(a.Aggregator.AS))
		id := a.Aggregator.ID.As4()
		out = append(out, id[:]...)
	}
	if len(a.Communities) > 0 {
		out, err = appendAttrHeader(out, flagOptional|flagTransitive, AttrCommunities, 4*len(a.Communities))
		if err != nil {
			return nil, err
		}
		for _, c := range a.Communities {
			out = binary.BigEndian.AppendUint32(out, uint32(c))
		}
	}
	return out, nil
}

// sanity check that idr.ASN fits the wire encoding
var _ = idr.ASN(0)
