package wire

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"repro/internal/idr"
)

// Marshal encodes one BGP message, header included.
func Marshal(m Message) ([]byte, error) {
	var body []byte
	var err error
	switch v := m.(type) {
	case Open:
		body, err = marshalOpen(v)
	case *Open:
		body, err = marshalOpen(*v)
	case Update:
		body, err = marshalUpdate(v)
	case *Update:
		body, err = marshalUpdate(*v)
	case Keepalive, *Keepalive:
		body = nil
	case Notification:
		body, err = marshalNotification(v)
	case *Notification:
		body, err = marshalNotification(*v)
	default:
		return nil, fmt.Errorf("wire: unknown message type %T", m)
	}
	if err != nil {
		return nil, err
	}
	total := HeaderLen + len(body)
	if total > MaxMsgLen {
		return nil, fmt.Errorf("wire: message length %d exceeds %d", total, MaxMsgLen)
	}
	out := make([]byte, total)
	for i := 0; i < MarkerLen; i++ {
		out[i] = 0xFF
	}
	binary.BigEndian.PutUint16(out[MarkerLen:], uint16(total))
	out[MarkerLen+2] = byte(m.Type())
	copy(out[HeaderLen:], body)
	return out, nil
}

func marshalOpen(o Open) ([]byte, error) {
	if o.HoldTimeSecs != 0 && o.HoldTimeSecs < 3 {
		return nil, fmt.Errorf("wire: open hold time %d (must be 0 or >= 3)", o.HoldTimeSecs)
	}
	// Capabilities: always advertise Four-Octet-AS with the real ASN
	// (RFC 6793), plus any caller-provided capabilities.
	caps := make([]Capability, 0, len(o.Capabilities)+1)
	four := make([]byte, 4)
	binary.BigEndian.PutUint32(four, uint32(o.AS))
	caps = append(caps, Capability{Code: CapFourOctetAS, Value: four})
	for _, c := range o.Capabilities {
		if c.Code == CapFourOctetAS {
			continue // implicit, never duplicated
		}
		caps = append(caps, c)
	}
	var opt []byte
	for _, c := range caps {
		if len(c.Value) > 255-2 {
			return nil, fmt.Errorf("wire: capability %d value too long", c.Code)
		}
		// Optional parameter type 2 (capabilities), one per parameter.
		param := make([]byte, 0, 4+len(c.Value))
		param = append(param, 2, byte(2+len(c.Value)), c.Code, byte(len(c.Value)))
		param = append(param, c.Value...)
		opt = append(opt, param...)
	}
	if len(opt) > 255 {
		return nil, fmt.Errorf("wire: optional parameters length %d > 255", len(opt))
	}
	body := make([]byte, 0, 10+len(opt))
	body = append(body, Version)
	myAS := uint16(ASTrans)
	if o.AS <= 0xFFFF {
		myAS = uint16(o.AS)
	}
	body = binary.BigEndian.AppendUint16(body, myAS)
	body = binary.BigEndian.AppendUint16(body, o.HoldTimeSecs)
	body = append(body, o.ID[:]...)
	body = append(body, byte(len(opt)))
	body = append(body, opt...)
	return body, nil
}

func marshalNotification(n Notification) ([]byte, error) {
	body := make([]byte, 0, 2+len(n.Data))
	body = append(body, n.Code, n.Subcode)
	body = append(body, n.Data...)
	return body, nil
}

func marshalUpdate(u Update) ([]byte, error) {
	withdrawn, err := marshalPrefixes(u.Withdrawn)
	if err != nil {
		return nil, fmt.Errorf("wire: withdrawn routes: %w", err)
	}
	var attrs []byte
	if len(u.NLRI) > 0 {
		attrs, err = marshalAttrs(u.Attrs)
		if err != nil {
			return nil, err
		}
	}
	nlri, err := marshalPrefixes(u.NLRI)
	if err != nil {
		return nil, fmt.Errorf("wire: nlri: %w", err)
	}
	body := make([]byte, 0, 4+len(withdrawn)+len(attrs)+len(nlri))
	body = binary.BigEndian.AppendUint16(body, uint16(len(withdrawn)))
	body = append(body, withdrawn...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	body = append(body, nlri...)
	return body, nil
}

func marshalPrefixes(ps []netip.Prefix) ([]byte, error) {
	var out []byte
	for _, p := range ps {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("prefix %v is not IPv4", p)
		}
		if p.Bits() < 0 {
			return nil, fmt.Errorf("prefix %v has invalid length", p)
		}
		out = append(out, byte(p.Bits()))
		b4 := p.Addr().As4()
		out = append(out, b4[:(p.Bits()+7)/8]...)
	}
	return out, nil
}

func appendAttr(out []byte, flags, typ uint8, value []byte) ([]byte, error) {
	if len(value) > 0xFFFF {
		return nil, fmt.Errorf("wire: attribute %d too long (%d)", typ, len(value))
	}
	if len(value) > 0xFF {
		flags |= flagExtLen
		out = append(out, flags, typ)
		out = binary.BigEndian.AppendUint16(out, uint16(len(value)))
	} else {
		out = append(out, flags, typ, byte(len(value)))
	}
	return append(out, value...), nil
}

func marshalAttrs(a PathAttrs) ([]byte, error) {
	var out []byte
	var err error

	// ORIGIN: well-known mandatory.
	if a.Origin > OriginIncomplete {
		return nil, fmt.Errorf("wire: invalid origin %d", a.Origin)
	}
	out, err = appendAttr(out, flagTransitive, AttrOrigin, []byte{byte(a.Origin)})
	if err != nil {
		return nil, err
	}

	// AS_PATH: well-known mandatory; 4-octet ASNs (RFC 6793 encoding
	// on a session with the Four-Octet-AS capability).
	var path []byte
	for _, s := range a.ASPath {
		if s.Type != ASSet && s.Type != ASSequence {
			return nil, fmt.Errorf("wire: invalid AS_PATH segment type %d", s.Type)
		}
		if len(s.ASNs) == 0 || len(s.ASNs) > 255 {
			return nil, fmt.Errorf("wire: AS_PATH segment with %d ASNs", len(s.ASNs))
		}
		path = append(path, byte(s.Type), byte(len(s.ASNs)))
		for _, asn := range s.ASNs {
			path = binary.BigEndian.AppendUint32(path, uint32(asn))
		}
	}
	out, err = appendAttr(out, flagTransitive, AttrASPath, path)
	if err != nil {
		return nil, err
	}

	// NEXT_HOP: well-known mandatory.
	if !a.NextHop.Is4() {
		return nil, fmt.Errorf("wire: next hop %v is not IPv4", a.NextHop)
	}
	nh := a.NextHop.As4()
	out, err = appendAttr(out, flagTransitive, AttrNextHop, nh[:])
	if err != nil {
		return nil, err
	}

	if a.MED != nil {
		v := make([]byte, 4)
		binary.BigEndian.PutUint32(v, *a.MED)
		out, err = appendAttr(out, flagOptional, AttrMED, v)
		if err != nil {
			return nil, err
		}
	}
	if a.LocalPref != nil {
		v := make([]byte, 4)
		binary.BigEndian.PutUint32(v, *a.LocalPref)
		out, err = appendAttr(out, flagTransitive, AttrLocalPref, v)
		if err != nil {
			return nil, err
		}
	}
	if a.AtomicAggregate {
		out, err = appendAttr(out, flagTransitive, AttrAtomicAggregate, nil)
		if err != nil {
			return nil, err
		}
	}
	if a.Aggregator != nil {
		if !a.Aggregator.ID.Is4() {
			return nil, fmt.Errorf("wire: aggregator ID %v is not IPv4", a.Aggregator.ID)
		}
		v := make([]byte, 8)
		binary.BigEndian.PutUint32(v, uint32(a.Aggregator.AS))
		id := a.Aggregator.ID.As4()
		copy(v[4:], id[:])
		out, err = appendAttr(out, flagOptional|flagTransitive, AttrAggregator, v)
		if err != nil {
			return nil, err
		}
	}
	if len(a.Communities) > 0 {
		v := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			v = binary.BigEndian.AppendUint32(v, uint32(c))
		}
		out, err = appendAttr(out, flagOptional|flagTransitive, AttrCommunities, v)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sanity check that idr.ASN fits the wire encoding
var _ = idr.ASN(0)
