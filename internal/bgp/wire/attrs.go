package wire

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/idr"
)

// Attribute type codes (RFC 4271 §5.1, RFC 1997).
const (
	AttrOrigin          uint8 = 1
	AttrASPath          uint8 = 2
	AttrNextHop         uint8 = 3
	AttrMED             uint8 = 4
	AttrLocalPref       uint8 = 5
	AttrAtomicAggregate uint8 = 6
	AttrAggregator      uint8 = 7
	AttrCommunities     uint8 = 8
)

// Attribute flag bits.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagPartial    uint8 = 0x20
	flagExtLen     uint8 = 0x10
)

// Origin is the ORIGIN attribute value.
type Origin uint8

// Origin values (RFC 4271 §5.1.1).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String names the origin.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// SegType is the AS_PATH segment type.
type SegType uint8

// AS_PATH segment types (RFC 4271 §4.3).
const (
	ASSet      SegType = 1
	ASSequence SegType = 2
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type SegType
	ASNs []idr.ASN
}

// ASPath is an ordered list of AS_PATH segments.
type ASPath []Segment

// NewASPath returns a single-sequence path over the given ASNs (empty
// input yields an empty path, as originated routes carry).
func NewASPath(asns ...idr.ASN) ASPath {
	if len(asns) == 0 {
		return nil
	}
	return ASPath{{Type: ASSequence, ASNs: append([]idr.ASN(nil), asns...)}}
}

// Length is the decision-process AS-path length: each AS in a sequence
// counts 1, each AS_SET counts 1 in total (RFC 4271 §9.1.2.2).
func (p ASPath) Length() int {
	n := 0
	for _, s := range p {
		switch s.Type {
		case ASSet:
			if len(s.ASNs) > 0 {
				n++
			}
		default:
			n += len(s.ASNs)
		}
	}
	return n
}

// Contains reports whether asn appears anywhere in the path — the BGP
// loop-detection test (RFC 4271 §9.1.2).
func (p ASPath) Contains(asn idr.ASN) bool {
	for _, s := range p {
		for _, a := range s.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Prepend returns a new path with asn prepended, merging into a
// leading AS_SEQUENCE when one exists (creating it otherwise).
func (p ASPath) Prepend(asn idr.ASN) ASPath {
	out := p.Clone()
	if len(out) > 0 && out[0].Type == ASSequence {
		out[0].ASNs = append([]idr.ASN{asn}, out[0].ASNs...)
		return out
	}
	return append(ASPath{{Type: ASSequence, ASNs: []idr.ASN{asn}}}, out...)
}

// First returns the leftmost AS on the path (the neighbor that sent
// it), or (0, false) for an empty path.
func (p ASPath) First() (idr.ASN, bool) {
	for _, s := range p {
		if len(s.ASNs) > 0 {
			return s.ASNs[0], true
		}
	}
	return 0, false
}

// Origin returns the rightmost AS on the path (the originator), or
// (0, false) for an empty path.
func (p ASPath) Origin() (idr.ASN, bool) {
	for i := len(p) - 1; i >= 0; i-- {
		if n := len(p[i].ASNs); n > 0 {
			return p[i].ASNs[n-1], true
		}
	}
	return 0, false
}

// Clone deep-copies the path.
func (p ASPath) Clone() ASPath {
	if p == nil {
		return nil
	}
	out := make(ASPath, len(p))
	for i, s := range p {
		out[i] = Segment{Type: s.Type, ASNs: append([]idr.ASN(nil), s.ASNs...)}
	}
	return out
}

// Equal reports deep equality of two paths.
func (p ASPath) Equal(o ASPath) bool {
	if len(p) != len(o) {
		return false
	}
	for i := range p {
		if p[i].Type != o[i].Type || len(p[i].ASNs) != len(o[i].ASNs) {
			return false
		}
		for j := range p[i].ASNs {
			if p[i].ASNs[j] != o[i].ASNs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the path in the conventional "1 2 {3,4}" form.
func (p ASPath) String() string {
	var b strings.Builder
	for i, s := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == ASSet {
			parts := make([]string, len(s.ASNs))
			for j, a := range s.ASNs {
				parts[j] = fmt.Sprint(uint32(a))
			}
			b.WriteString("{" + strings.Join(parts, ",") + "}")
			continue
		}
		for j, a := range s.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprint(&b, uint32(a))
		}
	}
	return b.String()
}

// Community is an RFC 1997 community value, conventionally written
// "<asn>:<value>".
type Community uint32

// NewCommunity builds a community from its AS and value halves.
func NewCommunity(asn uint16, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// Halves splits the community into its conventional parts.
func (c Community) Halves() (asn uint16, value uint16) {
	return uint16(c >> 16), uint16(c)
}

// String renders the community as "asn:value".
func (c Community) String() string {
	a, v := c.Halves()
	return fmt.Sprintf("%d:%d", a, v)
}

// Well-known communities (RFC 1997).
const (
	CommunityNoExport    Community = 0xFFFFFF01
	CommunityNoAdvertise Community = 0xFFFFFF02
)

// PathAttrs is the decoded attribute set of one UPDATE.
type PathAttrs struct {
	// Origin is the mandatory ORIGIN attribute.
	Origin Origin
	// ASPath is the mandatory AS_PATH attribute (empty when locally
	// originated and not yet sent over eBGP).
	ASPath ASPath
	// NextHop is the mandatory NEXT_HOP attribute.
	NextHop netip.Addr
	// MED is the optional MULTI_EXIT_DISC attribute.
	MED *uint32
	// LocalPref is the LOCAL_PREF attribute (iBGP/internal only; not
	// emitted on eBGP sessions).
	LocalPref *uint32
	// AtomicAggregate marks the ATOMIC_AGGREGATE flag attribute.
	AtomicAggregate bool
	// Aggregator is the optional AGGREGATOR attribute (RFC 4271
	// §5.1.7, 4-octet form per RFC 6793).
	Aggregator *Aggregator
	// Communities is the optional COMMUNITIES attribute.
	Communities []Community
}

// Aggregator identifies the speaker that formed an aggregate route.
type Aggregator struct {
	AS idr.ASN
	ID netip.Addr
}

// Clone deep-copies the attribute set.
func (a PathAttrs) Clone() PathAttrs {
	out := a
	out.ASPath = a.ASPath.Clone()
	if a.MED != nil {
		v := *a.MED
		out.MED = &v
	}
	if a.LocalPref != nil {
		v := *a.LocalPref
		out.LocalPref = &v
	}
	if a.Aggregator != nil {
		v := *a.Aggregator
		out.Aggregator = &v
	}
	if a.Communities != nil {
		out.Communities = append([]Community(nil), a.Communities...)
	}
	return out
}

// Equal reports semantic equality of two attribute sets.
func (a PathAttrs) Equal(b PathAttrs) bool {
	if a.Origin != b.Origin || a.NextHop != b.NextHop || a.AtomicAggregate != b.AtomicAggregate {
		return false
	}
	if !a.ASPath.Equal(b.ASPath) {
		return false
	}
	if (a.MED == nil) != (b.MED == nil) || (a.MED != nil && *a.MED != *b.MED) {
		return false
	}
	if (a.LocalPref == nil) != (b.LocalPref == nil) || (a.LocalPref != nil && *a.LocalPref != *b.LocalPref) {
		return false
	}
	if (a.Aggregator == nil) != (b.Aggregator == nil) || (a.Aggregator != nil && *a.Aggregator != *b.Aggregator) {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

// HasCommunity reports whether c is attached.
func (a PathAttrs) HasCommunity(c Community) bool {
	for _, have := range a.Communities {
		if have == c {
			return true
		}
	}
	return false
}

// AddCommunity returns a copy with c attached (kept sorted, no dups).
func (a PathAttrs) AddCommunity(c Community) PathAttrs {
	if a.HasCommunity(c) {
		return a
	}
	out := a.Clone()
	out.Communities = append(out.Communities, c)
	sort.Slice(out.Communities, func(i, j int) bool { return out.Communities[i] < out.Communities[j] })
	return out
}

// String renders the attributes for logs.
func (a PathAttrs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "origin=%s path=[%s] nh=%s", a.Origin, a.ASPath, a.NextHop)
	if a.MED != nil {
		fmt.Fprintf(&b, " med=%d", *a.MED)
	}
	if a.LocalPref != nil {
		fmt.Fprintf(&b, " lp=%d", *a.LocalPref)
	}
	if len(a.Communities) > 0 {
		parts := make([]string, len(a.Communities))
		for i, c := range a.Communities {
			parts[i] = c.String()
		}
		fmt.Fprintf(&b, " comm=%s", strings.Join(parts, ","))
	}
	return b.String()
}
