package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/idr"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m, err)
	}
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return out
}

func TestKeepaliveRoundTrip(t *testing.T) {
	m := roundTrip(t, Keepalive{})
	if m.Type() != MsgKeepalive {
		t.Fatalf("type = %v", m.Type())
	}
	b, _ := Marshal(Keepalive{})
	if len(b) != HeaderLen {
		t.Fatalf("keepalive length = %d, want %d", len(b), HeaderLen)
	}
}

func TestOpenRoundTrip2Byte(t *testing.T) {
	in := Open{
		AS:           64500,
		HoldTimeSecs: 90,
		ID:           idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.1")),
	}
	out := roundTrip(t, in).(Open)
	if out.AS != in.AS || out.HoldTimeSecs != in.HoldTimeSecs || out.ID != in.ID {
		t.Fatalf("round trip: %+v -> %+v", in, out)
	}
}

func TestOpenRoundTrip4Byte(t *testing.T) {
	in := Open{
		AS:           400000, // needs 4 octets
		HoldTimeSecs: 180,
		ID:           idr.RouterIDFromAddr(netip.MustParseAddr("10.9.8.7")),
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// The 2-octet field must carry AS_TRANS.
	if got := uint16(b[HeaderLen+1])<<8 | uint16(b[HeaderLen+2]); got != ASTrans {
		t.Fatalf("wire My-AS = %d, want AS_TRANS", got)
	}
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.(Open).AS != 400000 {
		t.Fatalf("decoded AS = %v", out.(Open).AS)
	}
}

func TestOpenExtraCapabilities(t *testing.T) {
	in := Open{
		AS:           1,
		HoldTimeSecs: 30,
		Capabilities: []Capability{
			{Code: CapRouteRefresh, Value: nil},
			{Code: CapFourOctetAS, Value: []byte{9, 9, 9, 9}}, // dropped: implicit
		},
	}
	out := roundTrip(t, in).(Open)
	if len(out.Capabilities) != 1 || out.Capabilities[0].Code != CapRouteRefresh {
		t.Fatalf("capabilities = %+v", out.Capabilities)
	}
	if out.AS != 1 {
		t.Fatalf("AS = %v (user-provided four-octet cap must not override)", out.AS)
	}
}

func TestOpenBadHoldTime(t *testing.T) {
	if _, err := Marshal(Open{AS: 1, HoldTimeSecs: 2}); err == nil {
		t.Fatal("hold time 2 should fail to marshal")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	in := Notification{Code: NotifCease, Subcode: 2, Data: []byte{1, 2, 3}}
	out := roundTrip(t, in).(Notification)
	if out.Code != in.Code || out.Subcode != in.Subcode || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip: %+v -> %+v", in, out)
	}
	if out.Error() == "" || out.String() == "" {
		t.Fatal("Notification should render")
	}
}

func med(v uint32) *uint32 { return &v }

func TestUpdateRoundTripFull(t *testing.T) {
	in := Update{
		Withdrawn: []netip.Prefix{
			netip.MustParsePrefix("10.1.0.0/16"),
			netip.MustParsePrefix("192.168.4.0/30"),
		},
		Attrs: PathAttrs{
			Origin:          OriginEGP,
			ASPath:          NewASPath(65001, 65002, 400000),
			NextHop:         netip.MustParseAddr("100.64.0.1"),
			MED:             med(77),
			LocalPref:       med(200),
			AtomicAggregate: true,
			Communities:     []Community{NewCommunity(65001, 7), CommunityNoExport},
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.2.3.0/24")},
	}
	out := roundTrip(t, in).(Update)
	if len(out.Withdrawn) != 2 || out.Withdrawn[0] != in.Withdrawn[0] || out.Withdrawn[1] != in.Withdrawn[1] {
		t.Fatalf("withdrawn = %v", out.Withdrawn)
	}
	if len(out.NLRI) != 1 || out.NLRI[0] != in.NLRI[0] {
		t.Fatalf("nlri = %v", out.NLRI)
	}
	if !out.Attrs.Equal(in.Attrs) {
		t.Fatalf("attrs: %s != %s", out.Attrs, in.Attrs)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	in := Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	out := roundTrip(t, in).(Update)
	if len(out.Withdrawn) != 1 || len(out.NLRI) != 0 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestUpdateEmptyPathOriginated(t *testing.T) {
	// A locally-originated route announced before eBGP prepending has
	// an empty AS_PATH, which must round-trip.
	in := Update{
		Attrs: PathAttrs{
			Origin:  OriginIGP,
			NextHop: netip.MustParseAddr("100.64.0.2"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.1.0/24")},
	}
	out := roundTrip(t, in).(Update)
	if out.Attrs.ASPath.Length() != 0 {
		t.Fatalf("path = %v", out.Attrs.ASPath)
	}
}

func TestUpdateASSetRoundTrip(t *testing.T) {
	in := Update{
		Attrs: PathAttrs{
			Origin: OriginIncomplete,
			ASPath: ASPath{
				{Type: ASSequence, ASNs: []idr.ASN{1, 2}},
				{Type: ASSet, ASNs: []idr.ASN{7, 8, 9}},
			},
			NextHop: netip.MustParseAddr("1.2.3.4"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	out := roundTrip(t, in).(Update)
	if !out.Attrs.ASPath.Equal(in.Attrs.ASPath) {
		t.Fatalf("as path = %v", out.Attrs.ASPath)
	}
	if out.Attrs.ASPath.Length() != 3 { // 2 + 1 for the set
		t.Fatalf("path length = %d", out.Attrs.ASPath.Length())
	}
}

func TestUpdateMissingMandatoryAttr(t *testing.T) {
	// NLRI without NEXT_HOP must be rejected on decode.
	in := Update{
		Attrs: PathAttrs{Origin: OriginIGP, NextHop: netip.MustParseAddr("1.1.1.1")},
		NLRI:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Surgically remove the NEXT_HOP attribute (flags 0x40, type 3,
	// len 4, value 4): find it and splice it out, fixing lengths.
	attrStart := HeaderLen + 2 + 0 + 2
	body := b[attrStart:]
	idx := bytes.Index(body, []byte{flagTransitive, AttrNextHop, 4})
	if idx < 0 {
		t.Fatal("could not locate NEXT_HOP bytes")
	}
	cut := append([]byte(nil), b[:attrStart+idx]...)
	cut = append(cut, b[attrStart+idx+7:]...)
	// Fix total length and attribute length.
	cut[MarkerLen] = byte(len(cut) >> 8)
	cut[MarkerLen+1] = byte(len(cut))
	alenOff := HeaderLen + 2
	alen := int(cut[alenOff])<<8 | int(cut[alenOff+1])
	alen -= 7
	cut[alenOff] = byte(alen >> 8)
	cut[alenOff+1] = byte(alen)
	_, err = Unmarshal(cut)
	var de *DecodeError
	if !errors.As(err, &de) || de.Code != NotifUpdateMessageError {
		t.Fatalf("want update decode error, got %v", err)
	}
}

func TestUnmarshalHeaderErrors(t *testing.T) {
	good, _ := Marshal(Keepalive{})

	short := good[:10]
	if _, err := Unmarshal(short); err == nil {
		t.Fatal("short message should fail")
	}

	badMarker := append([]byte(nil), good...)
	badMarker[0] = 0
	if _, err := Unmarshal(badMarker); err == nil {
		t.Fatal("bad marker should fail")
	}

	badLen := append([]byte(nil), good...)
	badLen[MarkerLen] = 0xFF
	badLen[MarkerLen+1] = 0xFF
	if _, err := Unmarshal(badLen); err == nil {
		t.Fatal("bad length should fail")
	}

	badType := append([]byte(nil), good...)
	badType[MarkerLen+2] = 9
	if _, err := Unmarshal(badType); err == nil {
		t.Fatal("unknown type should fail")
	}

	withBody := append([]byte(nil), good...)
	withBody = append(withBody, 1)
	withBody[MarkerLen+1] = byte(len(withBody))
	if _, err := Unmarshal(withBody); err == nil {
		t.Fatal("keepalive with body should fail")
	}
}

func TestUnmarshalPrefixValidation(t *testing.T) {
	// Prefix with host bits set beyond the mask must be rejected.
	u := Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	b, err := Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	// The withdrawn encoding is [8, 10]; corrupt the length to 4 so
	// the 10 in the address has host bits set (10 & 0xF0 != 10... it
	// is actually 10 = 0b00001010, /4 keeps top 4 bits = 0).
	b[HeaderLen+2] = 4
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("host bits beyond mask should fail")
	}
	// Prefix length > 32.
	b[HeaderLen+2] = 33
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("prefix length 33 should fail")
	}
}

func TestMarshalRejectsIPv6(t *testing.T) {
	u := Update{NLRI: []netip.Prefix{netip.MustParsePrefix("2001:db8::/32")},
		Attrs: PathAttrs{Origin: OriginIGP, NextHop: netip.MustParseAddr("1.1.1.1")}}
	if _, err := Marshal(u); err == nil {
		t.Fatal("IPv6 NLRI should fail (IPv4 unicast only)")
	}
	u2 := Update{NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		Attrs: PathAttrs{Origin: OriginIGP, NextHop: netip.MustParseAddr("::1")}}
	if _, err := Marshal(u2); err == nil {
		t.Fatal("IPv6 next hop should fail")
	}
}

func TestReadMessageStream(t *testing.T) {
	var stream bytes.Buffer
	msgs := []Message{
		Keepalive{},
		Open{AS: 5, HoldTimeSecs: 9, ID: idr.RouterIDFromAddr(netip.MustParseAddr("1.2.3.4"))},
		Notification{Code: NotifCease, Subcode: 0},
	}
	for _, m := range msgs {
		b, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(b)
	}
	for i, want := range msgs {
		frame, err := ReadMessage(&stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("frame %d type = %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&stream); err == nil {
		t.Fatal("EOF expected")
	}
}

func randPrefix(rng *rand.Rand) netip.Prefix {
	bits := rng.Intn(33)
	var b4 [4]byte
	rng.Read(b4[:])
	return netip.PrefixFrom(netip.AddrFrom4(b4), bits).Masked()
}

// Property: any well-formed Update round-trips byte-exactly through
// Marshal + Unmarshal.
func TestPropertyUpdateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		var u Update
		for n := rng.Intn(4); n > 0; n-- {
			u.Withdrawn = append(u.Withdrawn, randPrefix(rng))
		}
		for n := rng.Intn(4); n > 0; n-- {
			u.NLRI = append(u.NLRI, randPrefix(rng))
		}
		if len(u.NLRI) > 0 {
			var path ASPath
			for s := rng.Intn(3); s > 0; s-- {
				seg := Segment{Type: ASSequence}
				if rng.Intn(4) == 0 {
					seg.Type = ASSet
				}
				for a := 1 + rng.Intn(4); a > 0; a-- {
					seg.ASNs = append(seg.ASNs, idr.ASN(rng.Uint32()))
				}
				path = append(path, seg)
			}
			var nh [4]byte
			rng.Read(nh[:])
			u.Attrs = PathAttrs{
				Origin:  Origin(rng.Intn(3)),
				ASPath:  path,
				NextHop: netip.AddrFrom4(nh),
			}
			if rng.Intn(2) == 0 {
				u.Attrs.MED = med(rng.Uint32())
			}
			if rng.Intn(2) == 0 {
				u.Attrs.LocalPref = med(rng.Uint32())
			}
			for c := rng.Intn(3); c > 0; c-- {
				u.Attrs.Communities = append(u.Attrs.Communities, Community(rng.Uint32()))
			}
		}
		b, err := Marshal(u)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		b2, err := Marshal(got)
		if err != nil {
			t.Fatalf("case %d: re-marshal: %v", i, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("case %d: round trip not byte-stable", i)
		}
	}
}

// Property: Unmarshal never panics on arbitrary input.
func TestPropertyUnmarshalNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Unmarshal panicked")
			}
		}()
		_, _ = Unmarshal(data)
		// Also try with a valid header stapled on.
		framed := make([]byte, 0, HeaderLen+len(data))
		for i := 0; i < MarkerLen; i++ {
			framed = append(framed, 0xFF)
		}
		total := HeaderLen + len(data)
		if total > MaxMsgLen {
			return true
		}
		framed = append(framed, byte(total>>8), byte(total), byte(MsgUpdate))
		framed = append(framed, data...)
		_, _ = Unmarshal(framed)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestASPathHelpers(t *testing.T) {
	p := NewASPath(1, 2, 3)
	if p.Length() != 3 || !p.Contains(2) || p.Contains(9) {
		t.Fatal("basic helpers wrong")
	}
	p2 := p.Prepend(9)
	if p2.Length() != 4 || p.Length() != 3 {
		t.Fatal("Prepend must not mutate")
	}
	first, ok := p2.First()
	if !ok || first != 9 {
		t.Fatalf("First = %v", first)
	}
	origin, ok := p2.Origin()
	if !ok || origin != 3 {
		t.Fatalf("Origin = %v", origin)
	}
	var empty ASPath
	if _, ok := empty.First(); ok {
		t.Fatal("empty path First should be false")
	}
	if _, ok := empty.Origin(); ok {
		t.Fatal("empty path Origin should be false")
	}
	// Prepend onto a leading AS_SET starts a new sequence.
	setPath := ASPath{{Type: ASSet, ASNs: []idr.ASN{5}}}
	p3 := setPath.Prepend(1)
	if len(p3) != 2 || p3[0].Type != ASSequence {
		t.Fatalf("Prepend onto set = %v", p3)
	}
	if NewASPath().Length() != 0 {
		t.Fatal("empty NewASPath")
	}
	if p.String() == "" || p3.String() == "" {
		t.Fatal("String should render")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("clone should be equal")
	}
	if p.Equal(p2) {
		t.Fatal("different paths equal")
	}
}

func TestCommunityHelpers(t *testing.T) {
	c := NewCommunity(65001, 40)
	a, v := c.Halves()
	if a != 65001 || v != 40 {
		t.Fatalf("halves = %d:%d", a, v)
	}
	if c.String() != "65001:40" {
		t.Fatalf("String = %q", c.String())
	}
	attrs := PathAttrs{}
	attrs2 := attrs.AddCommunity(c)
	if !attrs2.HasCommunity(c) || attrs.HasCommunity(c) {
		t.Fatal("AddCommunity must copy")
	}
	if attrs3 := attrs2.AddCommunity(c); len(attrs3.Communities) != 1 {
		t.Fatal("duplicate community added")
	}
}

func TestAttrsCloneIndependence(t *testing.T) {
	v := uint32(5)
	a := PathAttrs{ASPath: NewASPath(1, 2), MED: &v, Communities: []Community{1}}
	c := a.Clone()
	*c.MED = 9
	c.Communities[0] = 2
	c.ASPath[0].ASNs[0] = 99
	if *a.MED != 5 || a.Communities[0] != 1 || a.ASPath[0].ASNs[0] != 1 {
		t.Fatal("Clone shares memory with original")
	}
}

func TestTypeStrings(t *testing.T) {
	if MsgOpen.String() != "OPEN" || MsgType(9).String() == "" {
		t.Fatal("MsgType.String wrong")
	}
	if OriginIGP.String() != "IGP" || Origin(9).String() == "" {
		t.Fatal("Origin.String wrong")
	}
}

func TestAggregatorRoundTrip(t *testing.T) {
	in := Update{
		Attrs: PathAttrs{
			Origin:  OriginIGP,
			ASPath:  NewASPath(1),
			NextHop: netip.MustParseAddr("1.2.3.4"),
			Aggregator: &Aggregator{
				AS: 400000,
				ID: netip.MustParseAddr("172.16.0.9"),
			},
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	out := roundTrip(t, in).(Update)
	if out.Attrs.Aggregator == nil || *out.Attrs.Aggregator != *in.Attrs.Aggregator {
		t.Fatalf("aggregator = %+v", out.Attrs.Aggregator)
	}
	if !out.Attrs.Equal(in.Attrs) {
		t.Fatal("Equal should cover Aggregator")
	}
	// Clone independence.
	c := in.Attrs.Clone()
	c.Aggregator.AS = 1
	if in.Attrs.Aggregator.AS != 400000 {
		t.Fatal("Clone shares Aggregator")
	}
	// Equal detects differences.
	other := in.Attrs.Clone()
	other.Aggregator.AS = 5
	if other.Equal(in.Attrs) {
		t.Fatal("Equal missed Aggregator difference")
	}
	// IPv6 aggregator ID rejected.
	bad := in
	bad.Attrs = in.Attrs.Clone()
	bad.Attrs.Aggregator.ID = netip.MustParseAddr("::1")
	if _, err := Marshal(bad); err == nil {
		t.Fatal("IPv6 aggregator should fail")
	}
}
