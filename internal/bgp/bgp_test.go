package bgp

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// lab wires a handful of routers over netem links for FSM and
// propagation tests. (Whole-topology experiments live in the
// experiment package; this harness keeps bgp tests self-contained.)
type lab struct {
	t       *testing.T
	k       *sim.Kernel
	net     *netem.Network
	routers map[idr.ASN]*Router
	nodes   map[idr.ASN]*netem.Node
	keys    map[*netem.Endpoint]rib.PeerKey
	peers   map[*netem.Endpoint]*Peer
	timers  Timers
	pol     policy.Policy
}

func newLab(t *testing.T, timers Timers, pol policy.Policy) *lab {
	t.Helper()
	k := sim.NewKernel(1)
	return &lab{
		t:       t,
		k:       k,
		net:     netem.NewNetwork(k, k.Rand()),
		routers: make(map[idr.ASN]*Router),
		nodes:   make(map[idr.ASN]*netem.Node),
		keys:    make(map[*netem.Endpoint]rib.PeerKey),
		peers:   make(map[*netem.Endpoint]*Peer),
		timers:  timers,
		pol:     pol,
	}
}

// addRouter creates router + node for asn.
func (l *lab) addRouter(asn idr.ASN) *Router {
	l.t.Helper()
	cfg := Config{
		ASN:      asn,
		RouterID: idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(asn)})),
		Clock:    l.k,
		Rand:     l.k.Rand(),
		Policy:   l.pol,
		Timers:   l.timers,
	}
	r, err := New(cfg)
	if err != nil {
		l.t.Fatal(err)
	}
	node, err := l.net.AddNode(asn.String())
	if err != nil {
		l.t.Fatal(err)
	}
	node.OnMessage(func(from *netem.Endpoint, data []byte) {
		r.Deliver(l.keys[from], data)
	})
	l.routers[asn] = r
	l.nodes[asn] = node
	return r
}

// connect links two routers with peering sessions and returns the link.
func (l *lab) connect(a, b idr.ASN, kind topology.NeighborKind) *netem.Link {
	l.t.Helper()
	link, err := l.net.Connect(l.nodes[a], l.nodes[b], netem.LinkConfig{})
	if err != nil {
		l.t.Fatal(err)
	}
	epA, epB := link.Endpoints()
	l.addPeer(a, b, epA, kind)
	var reverse topology.NeighborKind
	switch kind {
	case topology.KindCustomer:
		reverse = topology.KindProvider
	case topology.KindProvider:
		reverse = topology.KindCustomer
	default:
		reverse = kind
	}
	l.addPeer(b, a, epB, reverse)
	link.OnStateChange(func(up bool) {
		for _, ep := range []*netem.Endpoint{epA, epB} {
			if p := l.peers[ep]; p != nil {
				if up {
					p.TransportUp()
				} else {
					p.TransportDown()
				}
			}
		}
	})
	return link
}

func (l *lab) addPeer(local, remote idr.ASN, ep *netem.Endpoint, kind topology.NeighborKind) {
	l.t.Helper()
	key := rib.PeerKey(fmt.Sprintf("to-%s", remote))
	pc := PeerConfig{
		Key:       key,
		RemoteASN: remote,
		Neighbor:  policy.Neighbor{Key: key, ASN: remote, Kind: kind},
		NextHop:   netip.AddrFrom4([4]byte{100, 64, byte(local), byte(remote)}),
		Send:      ep.Send,
	}
	p, err := l.routers[local].AddPeer(pc)
	if err != nil {
		l.t.Fatal(err)
	}
	l.keys[ep] = key
	l.peers[ep] = p
}

// start brings all transports up.
func (l *lab) start() {
	for _, p := range l.peers {
		p := p
		l.k.Go(p.TransportUp)
	}
}

func TestSessionEstablishment(t *testing.T) {
	l := newLab(t, Timers{MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	r2 := l.addRouter(2)
	l.connect(1, 2, topology.KindPeer)
	l.start()
	if err := l.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.EstablishedCount() != 1 || r2.EstablishedCount() != 1 {
		t.Fatalf("established: r1=%d r2=%d", r1.EstablishedCount(), r2.EstablishedCount())
	}
	p, _ := r1.Peer("to-AS2")
	if p.State() != StateEstablished {
		t.Fatalf("state = %v", p.State())
	}
	if p.RemoteASN() != 2 || p.Key() != "to-AS2" {
		t.Fatal("peer metadata wrong")
	}
}

func TestAnnouncePropagatesAndPrepends(t *testing.T) {
	l := newLab(t, Timers{MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	l.addRouter(2)
	r3 := l.addRouter(3)
	l.connect(1, 2, topology.KindPeer)
	l.connect(2, 3, topology.KindPeer)
	l.start()
	if err := l.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	l.k.Go(func() {
		if err := r1.Announce(pfx); err != nil {
			t.Error(err)
		}
	})
	if err := l.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	best, ok := r3.Table().Best(pfx)
	if !ok {
		t.Fatal("AS3 did not learn the prefix")
	}
	want := wire.NewASPath(2, 1)
	if !best.Attrs.ASPath.Equal(want) {
		t.Fatalf("AS3 path = %v, want %v", best.Attrs.ASPath, want)
	}
	if got := r1.Originated(); len(got) != 1 || got[0] != pfx {
		t.Fatalf("Originated = %v", got)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	l := newLab(t, Timers{MRAI: time.Second, MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	l.addRouter(2)
	r3 := l.addRouter(3)
	l.connect(1, 2, topology.KindPeer)
	l.connect(2, 3, topology.KindPeer)
	l.start()
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	l.k.AfterFunc(time.Second, func() { _ = r1.Announce(pfx) })
	if err := l.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := r3.Table().Best(pfx); !ok {
		t.Fatal("setup: AS3 should have the route")
	}
	l.k.Go(func() { _ = r1.Withdraw(pfx) })
	if err := l.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := r3.Table().Best(pfx); ok {
		t.Fatal("AS3 still has the withdrawn route")
	}
	if err := r1.Withdraw(pfx); err == nil {
		t.Fatal("double withdraw should error")
	}
}

func TestLinkFailureResetsAndRecovers(t *testing.T) {
	l := newLab(t, Timers{MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	r2 := l.addRouter(2)
	link := l.connect(1, 2, topology.KindPeer)
	l.start()
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	l.k.AfterFunc(time.Second, func() { _ = r1.Announce(pfx) })
	if err := l.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Table().Best(pfx); !ok {
		t.Fatal("setup: AS2 should have the route")
	}
	l.k.Go(func() { link.SetUp(false) })
	if err := l.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Table().Best(pfx); ok {
		t.Fatal("route should be flushed on session loss")
	}
	if r1.EstablishedCount() != 0 {
		t.Fatal("session should be down")
	}
	l.k.Go(func() { link.SetUp(true) })
	if err := l.k.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.EstablishedCount() != 1 {
		t.Fatal("session should have re-established")
	}
	if _, ok := r2.Table().Best(pfx); !ok {
		t.Fatal("route should be relearned after recovery")
	}
	if r1.Stats().SessionResets == 0 {
		t.Fatal("reset should be counted")
	}
}

func TestDelayedNeighborStart(t *testing.T) {
	// AS2's transport stays down initially; AS1 keeps retrying and the
	// session comes up once AS2 joins.
	l := newLab(t, Timers{MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	l.addRouter(2)
	link := l.connect(1, 2, topology.KindPeer)
	_ = link
	// Start only AS1's side.
	epA, epB := link.Endpoints()
	l.k.Go(l.peers[epA].TransportUp)
	if err := l.k.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.EstablishedCount() != 0 {
		t.Fatal("cannot establish one-sided")
	}
	l.k.Go(l.peers[epB].TransportUp)
	if err := l.k.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.EstablishedCount() != 1 {
		t.Fatal("session should establish after the neighbor starts")
	}
}

func TestLoopPrevention(t *testing.T) {
	// Triangle of peers with full transit: no router may ever install
	// a path containing its own ASN, and all tables converge.
	l := newLab(t, Timers{MRAI: time.Second, MRAIJitter: false}, policy.PermitAll{})
	for asn := idr.ASN(1); asn <= 3; asn++ {
		l.addRouter(asn)
	}
	l.connect(1, 2, topology.KindPeer)
	l.connect(2, 3, topology.KindPeer)
	l.connect(1, 3, topology.KindPeer)
	l.start()
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	l.k.AfterFunc(time.Second, func() { _ = l.routers[1].Announce(pfx) })
	if err := l.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	for asn, r := range l.routers {
		best, ok := r.Table().Best(pfx)
		if !ok {
			t.Fatalf("%v has no route", asn)
		}
		if best.Attrs.ASPath.Contains(asn) {
			t.Fatalf("%v installed a looped path %v", asn, best.Attrs.ASPath)
		}
	}
}

func TestMRAIPacing(t *testing.T) {
	// With transit via AS2, AS3's announcements to AS1 about changing
	// paths must be spaced by at least MRAI.
	const mrai = 10 * time.Second
	l := newLab(t, Timers{MRAI: mrai, MRAIJitter: false}, policy.PermitAll{})
	l.addRouter(1)
	r2 := l.addRouter(2)
	var announceTimes []time.Time
	r2cfg := r2.cfg
	r2cfg.Trace = func(ev TraceEvent) {
		if ev.Kind == TraceSend && ev.Peer == "to-AS1" {
			if u, ok := ev.Msg.(wire.Update); ok && len(u.NLRI) > 0 {
				announceTimes = append(announceTimes, ev.Time)
			}
		}
	}
	r2.cfg = r2cfg
	l.connect(1, 2, topology.KindPeer)
	l.start()
	pfx := netip.MustParsePrefix("10.0.2.0/24")
	l.k.AfterFunc(time.Second, func() { _ = r2.Announce(pfx) })
	// Withdraw after the first flush went out, then re-announce after
	// the withdrawal batch left: three distinct batches, each spaced
	// by the advertisement interval.
	l.k.AfterFunc(2*time.Second, func() { _ = r2.Withdraw(pfx) })
	l.k.AfterFunc(13*time.Second, func() { _ = r2.Announce(pfx) })
	if err := l.k.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(announceTimes) != 2 {
		t.Fatalf("want 2 announcements, got %d", len(announceTimes))
	}
	for i := 1; i < len(announceTimes); i++ {
		gap := announceTimes[i].Sub(announceTimes[i-1])
		if gap < mrai {
			t.Fatalf("announcements %d and %d only %v apart (MRAI %v)", i-1, i, gap, mrai)
		}
	}
	// A flap entirely inside one batch window is absorbed. The
	// withdrawal consumes the open slot immediately; the announce and
	// re-withdraw that follow inside the closed window cancel out, so
	// no further announcement is ever sent.
	before := len(announceTimes)
	l.k.Go(func() { _ = r2.Withdraw(pfx) })
	l.k.AfterFunc(time.Second, func() { _ = r2.Announce(pfx) })
	l.k.AfterFunc(2*time.Second, func() { _ = r2.Withdraw(pfx) })
	if err := l.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(announceTimes) != before {
		t.Fatalf("in-window flap leaked %d extra announcements", len(announceTimes)-before)
	}
}

func TestGaoRexfordNoValleyTransit(t *testing.T) {
	// AS1 provides AS2 and AS3; AS2 peers with AS3. A prefix from AS1
	// (provider of both) must not transit the AS2-AS3 peering, and a
	// prefix of AS2 must reach AS3 both directly (peer) and never via
	// a valley.
	l := newLab(t, Timers{MRAI: time.Second, MRAIJitter: false}, policy.GaoRexford{})
	r1 := l.addRouter(1)
	r2 := l.addRouter(2)
	r3 := l.addRouter(3)
	l.connect(1, 2, topology.KindCustomer) // AS2 is AS1's customer
	l.connect(1, 3, topology.KindCustomer)
	l.connect(2, 3, topology.KindPeer)
	l.start()
	pfx1 := netip.MustParsePrefix("10.0.1.0/24")
	pfx2 := netip.MustParsePrefix("10.0.2.0/24")
	l.k.AfterFunc(time.Second, func() {
		_ = r1.Announce(pfx1)
		_ = r2.Announce(pfx2)
	})
	if err := l.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	// AS3 reaches pfx1 only via its provider AS1 (path [1]).
	best, ok := r3.Table().Best(pfx1)
	if !ok {
		t.Fatal("AS3 has no route to provider prefix")
	}
	if !best.Attrs.ASPath.Equal(wire.NewASPath(1)) {
		t.Fatalf("AS3 path to pfx1 = %v, want direct provider path", best.Attrs.ASPath)
	}
	// AS3 prefers the peer path [2] for pfx2 (peer pref > provider).
	best, ok = r3.Table().Best(pfx2)
	if !ok {
		t.Fatal("AS3 has no route to peer prefix")
	}
	if !best.Attrs.ASPath.Equal(wire.NewASPath(2)) {
		t.Fatalf("AS3 path to pfx2 = %v, want peer path [2]", best.Attrs.ASPath)
	}
	// AS1 must learn pfx2 from its customer AS2 directly, never via
	// AS3 (that would be a valley).
	best, ok = r1.Table().Best(pfx2)
	if !ok {
		t.Fatal("AS1 has no route to customer prefix")
	}
	if !best.Attrs.ASPath.Equal(wire.NewASPath(2)) {
		t.Fatalf("AS1 path to pfx2 = %v", best.Attrs.ASPath)
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	// Freeze AS2 after establishment by dropping all its outgoing
	// messages: AS1's hold timer must fire and reset the session.
	l := newLab(t, Timers{HoldTime: 9 * time.Second, MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	l.addRouter(2)
	link := l.connect(1, 2, topology.KindPeer)
	l.start()
	if err := l.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.EstablishedCount() != 1 {
		t.Fatal("setup: session should be up")
	}
	// Silence AS2 by replacing its peer's send with a black hole: we
	// simulate a hung process, not a broken link.
	epA, epB := link.Endpoints()
	_ = epA
	p2 := l.peers[epB]
	p2.cfg.Send = func([]byte) error { return nil }
	// Also stop its keepalive timer from being re-armed; easiest is to
	// force its state so the timer callback stops sending.
	p2.keepaliveTimer.Stop()
	if err := l.k.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	p1, _ := r1.Peer("to-AS2")
	if p1.State() == StateEstablished {
		t.Fatal("hold timer should have reset the silent session")
	}
	if r1.Stats().NotificationsSent == 0 {
		t.Fatal("hold expiry should send a NOTIFICATION")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(Config{Clock: k}); err == nil {
		t.Fatal("missing ASN should error")
	}
	if _, err := New(Config{ASN: 1}); err == nil {
		t.Fatal("missing clock should error")
	}
	if _, err := New(Config{ASN: 1, Clock: k, Timers: Timers{MRAIJitter: true}}); err == nil {
		t.Fatal("jitter without rand should error")
	}
	r, err := New(Config{ASN: 1, Clock: k})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPeer(PeerConfig{}); err == nil {
		t.Fatal("empty peer config should error")
	}
	if _, err := r.AddPeer(PeerConfig{Key: "p"}); err == nil {
		t.Fatal("missing remote ASN should error")
	}
	if _, err := r.AddPeer(PeerConfig{Key: "p", RemoteASN: 2}); err == nil {
		t.Fatal("missing send should error")
	}
	ok := PeerConfig{Key: "p", RemoteASN: 2, Send: func([]byte) error { return nil }}
	if _, err := r.AddPeer(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPeer(ok); err == nil {
		t.Fatal("duplicate key should error")
	}
	if err := r.Announce(netip.MustParsePrefix("2001:db8::/32")); err == nil {
		t.Fatal("IPv6 announce should error")
	}
	if r.ASN() != 1 {
		t.Fatal("ASN accessor wrong")
	}
	if len(r.Peers()) != 1 {
		t.Fatal("Peers accessor wrong")
	}
	if _, found := r.Peer("nope"); found {
		t.Fatal("unknown peer lookup should miss")
	}
	if StateIdle.String() != "Idle" || State(9).String() == "" {
		t.Fatal("State.String wrong")
	}
}

func TestWrongASNInOpenRejected(t *testing.T) {
	l := newLab(t, Timers{MRAIJitter: false}, policy.PermitAll{})
	r1 := l.addRouter(1)
	l.addRouter(2)
	link := l.connect(1, 2, topology.KindPeer)
	// Misconfigure AS1's expectation.
	epA, _ := link.Endpoints()
	l.peers[epA].cfg.RemoteASN = 99
	l.start()
	if err := l.k.RunFor(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.EstablishedCount() != 0 {
		t.Fatal("session with wrong ASN must not establish")
	}
}
