package bgp

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
)

// dampHarness is a harness with route-flap damping enabled.
func dampHarness(t *testing.T, cfg DampingConfig) *harness {
	t.Helper()
	h := &harness{k: sim.NewKernel(1)}
	r, err := New(Config{
		ASN:      1,
		RouterID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.1")),
		Clock:    h.k,
		Rand:     h.k.Rand(),
		Timers:   Timers{MRAI: time.Second, MRAIJitter: false},
		Damping:  &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AddPeer(PeerConfig{
		Key:       "to-AS2",
		RemoteASN: 2,
		NextHop:   netip.MustParseAddr("100.64.0.1"),
		Send: func(b []byte) error {
			h.sent = append(h.sent, append([]byte(nil), b...))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.r, h.p = r, p
	return h
}

var dampPfx = netip.MustParsePrefix("10.0.9.0/24")

func (h *harness) announcePrefix(t *testing.T, pfx netip.Prefix) {
	t.Helper()
	h.inject(t, wire.Update{
		Attrs: wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(2),
			NextHop: netip.MustParseAddr("100.64.0.2")},
		NLRI: []netip.Prefix{pfx},
	})
}

func (h *harness) withdrawPrefix(t *testing.T, pfx netip.Prefix) {
	t.Helper()
	h.inject(t, wire.Update{Withdrawn: []netip.Prefix{pfx}})
}

func TestDampingSuppressesFlappingRoute(t *testing.T) {
	h := dampHarness(t, DampingConfig{HalfLife: time.Minute})
	h.establish(t)
	// Flap twice (announce/withdraw): 2 x 1000 penalty >= 2000
	// suppress threshold, so the third announcement is held back.
	for i := 0; i < 2; i++ {
		h.announcePrefix(t, dampPfx)
		h.withdrawPrefix(t, dampPfx)
	}
	h.announcePrefix(t, dampPfx)
	if _, ok := h.r.Table().Best(dampPfx); ok {
		t.Fatal("flapping route should be suppressed")
	}
	if !h.r.Suppressed("to-AS2", dampPfx) {
		t.Fatal("Suppressed() should report true")
	}
	if h.r.DampingPenalty("to-AS2", dampPfx) < 2000 {
		t.Fatalf("penalty = %v", h.r.DampingPenalty("to-AS2", dampPfx))
	}
}

func TestDampingReusesAfterDecay(t *testing.T) {
	h := dampHarness(t, DampingConfig{HalfLife: time.Minute})
	h.establish(t)
	for i := 0; i < 2; i++ {
		h.announcePrefix(t, dampPfx)
		h.withdrawPrefix(t, dampPfx)
	}
	h.announcePrefix(t, dampPfx)
	if _, ok := h.r.Table().Best(dampPfx); ok {
		t.Fatal("setup: should be suppressed")
	}
	// Penalty ~2000 decays to reuse threshold 750 after
	// log2(2000/750) ~ 1.4 half-lives ~ 85s. Keep the session alive
	// with keepalives while waiting.
	for i := 0; i < 9; i++ {
		if err := h.k.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		h.inject(t, wire.Keepalive{})
	}
	if _, ok := h.r.Table().Best(dampPfx); !ok {
		t.Fatal("route should be reinstated after penalty decay")
	}
	if h.r.Suppressed("to-AS2", dampPfx) {
		t.Fatal("Suppressed() should be false after reuse")
	}
}

func TestDampingWithdrawnWhileSuppressed(t *testing.T) {
	h := dampHarness(t, DampingConfig{HalfLife: time.Minute})
	h.establish(t)
	for i := 0; i < 2; i++ {
		h.announcePrefix(t, dampPfx)
		h.withdrawPrefix(t, dampPfx)
	}
	h.announcePrefix(t, dampPfx) // suppressed, held back
	h.withdrawPrefix(t, dampPfx) // final withdrawal while suppressed
	for i := 0; i < 30; i++ {
		if err := h.k.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		h.inject(t, wire.Keepalive{})
	}
	if _, ok := h.r.Table().Best(dampPfx); ok {
		t.Fatal("withdrawn-while-suppressed route must not reappear")
	}
}

func TestDampingStableRouteUnaffected(t *testing.T) {
	h := dampHarness(t, DampingConfig{HalfLife: time.Minute})
	h.establish(t)
	// A single announcement never accrues penalty.
	h.announcePrefix(t, dampPfx)
	if _, ok := h.r.Table().Best(dampPfx); !ok {
		t.Fatal("stable route should be installed")
	}
	if h.r.DampingPenalty("to-AS2", dampPfx) != 0 {
		t.Fatal("stable route should have zero penalty")
	}
	// Identical re-announcements are not flaps.
	for i := 0; i < 5; i++ {
		h.announcePrefix(t, dampPfx)
	}
	if h.r.DampingPenalty("to-AS2", dampPfx) != 0 {
		t.Fatal("identical re-announcements must not be penalized")
	}
	if _, ok := h.r.Table().Best(dampPfx); !ok {
		t.Fatal("route should stay installed")
	}
}

func TestDampingAttributeChangesPenalized(t *testing.T) {
	h := dampHarness(t, DampingConfig{HalfLife: time.Minute})
	h.establish(t)
	h.announcePrefix(t, dampPfx)
	// Announce with alternating paths: each change costs 500.
	alt := wire.Update{
		Attrs: wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(2, 7),
			NextHop: netip.MustParseAddr("100.64.0.2")},
		NLRI: []netip.Prefix{dampPfx},
	}
	h.inject(t, alt)
	h.announcePrefix(t, dampPfx)
	h.inject(t, alt)
	// 3 changes x 500 = 1500 < 2000: still installed.
	if _, ok := h.r.Table().Best(dampPfx); !ok {
		t.Fatal("route should still be installed below threshold")
	}
	h.announcePrefix(t, dampPfx) // 4th change -> 2000: suppressed
	if _, ok := h.r.Table().Best(dampPfx); ok {
		t.Fatal("route should be suppressed after repeated path changes")
	}
}

func TestDampingSessionResetClearsState(t *testing.T) {
	h := dampHarness(t, DampingConfig{HalfLife: time.Minute})
	h.establish(t)
	for i := 0; i < 2; i++ {
		h.announcePrefix(t, dampPfx)
		h.withdrawPrefix(t, dampPfx)
	}
	h.announcePrefix(t, dampPfx)
	if !h.r.Suppressed("to-AS2", dampPfx) {
		t.Fatal("setup: should be suppressed")
	}
	h.p.TransportDown()
	h.p.TransportUp()
	if h.r.Suppressed("to-AS2", dampPfx) {
		t.Fatal("session reset should clear damping state")
	}
	if h.r.DampingPenalty("to-AS2", dampPfx) != 0 {
		t.Fatal("penalty should be cleared")
	}
}

func TestDampingOffByDefault(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	if h.r.Suppressed("to-AS2", dampPfx) || h.r.DampingPenalty("to-AS2", dampPfx) != 0 {
		t.Fatal("damping hooks should be inert when disabled")
	}
	for i := 0; i < 5; i++ {
		h.announcePrefix(t, dampPfx)
		h.withdrawPrefix(t, dampPfx)
	}
	h.announcePrefix(t, dampPfx)
	if _, ok := h.r.Table().Best(dampPfx); !ok {
		t.Fatal("without damping the flapping route stays usable")
	}
}
