package bgp

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// harness wires a router whose single peer's outbound frames are
// captured, so tests can inject crafted frames and observe replies.
type harness struct {
	k      *sim.Kernel
	r      *Router
	p      *Peer
	sent   [][]byte
	events []TraceEvent
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{k: sim.NewKernel(1)}
	r, err := New(Config{
		ASN:      1,
		RouterID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.1")),
		Clock:    h.k,
		Rand:     h.k.Rand(),
		Timers:   Timers{MRAI: time.Second, MRAIJitter: false},
		Trace:    func(ev TraceEvent) { h.events = append(h.events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AddPeer(PeerConfig{
		Key:       "to-AS2",
		RemoteASN: 2,
		NextHop:   netip.MustParseAddr("100.64.0.1"),
		Send: func(b []byte) error {
			h.sent = append(h.sent, append([]byte(nil), b...))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.r, h.p = r, p
	return h
}

func (h *harness) lastSentType(t *testing.T) wire.MsgType {
	t.Helper()
	if len(h.sent) == 0 {
		t.Fatal("nothing sent")
	}
	m, err := wire.Unmarshal(h.sent[len(h.sent)-1])
	if err != nil {
		t.Fatal(err)
	}
	return m.Type()
}

func (h *harness) inject(t *testing.T, m wire.Message) {
	t.Helper()
	frame, err := wire.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	h.r.Deliver("to-AS2", frame)
}

// establish drives the session to Established by hand.
func (h *harness) establish(t *testing.T) {
	t.Helper()
	h.p.TransportUp()
	h.inject(t, wire.Open{AS: 2, HoldTimeSecs: 90,
		ID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.2"))})
	h.inject(t, wire.Keepalive{})
	if h.p.State() != StateEstablished {
		t.Fatalf("state = %v, want Established", h.p.State())
	}
}

func TestFSMHandshakeMessageOrder(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	// Sent: OPEN, then KEEPALIVE (confirming the peer's OPEN).
	if len(h.sent) < 2 {
		t.Fatalf("sent %d messages", len(h.sent))
	}
	m0, _ := wire.Unmarshal(h.sent[0])
	m1, _ := wire.Unmarshal(h.sent[1])
	if m0.Type() != wire.MsgOpen || m1.Type() != wire.MsgKeepalive {
		t.Fatalf("handshake order: %v then %v", m0.Type(), m1.Type())
	}
}

func TestFSMGarbageFrameTriggersNotification(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	h.r.Deliver("to-AS2", []byte{1, 2, 3})
	if h.p.State() != StateIdle {
		t.Fatalf("state = %v, want Idle after garbage", h.p.State())
	}
	// A decode error on a framed-but-bad message sends a NOTIFICATION.
	h2 := newHarness(t)
	h2.establish(t)
	bad, _ := wire.Marshal(wire.Keepalive{})
	bad = append(bad, 0xFF) // keepalive with body
	bad[wire.MarkerLen+1] = byte(len(bad))
	h2.r.Deliver("to-AS2", bad)
	if h2.lastSentType(t) != wire.MsgNotification {
		t.Fatal("decode error should elicit a NOTIFICATION")
	}
	if h2.r.Stats().NotificationsSent == 0 {
		t.Fatal("notification not counted")
	}
}

func TestFSMUpdateBeforeEstablishedIsError(t *testing.T) {
	h := newHarness(t)
	h.p.TransportUp() // OpenSent
	h.inject(t, wire.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}})
	if h.p.State() != StateIdle {
		t.Fatalf("state = %v, want Idle", h.p.State())
	}
	if h.lastSentType(t) != wire.MsgNotification {
		t.Fatal("want FSM-error NOTIFICATION")
	}
}

func TestFSMSecondOpenIsError(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	h.inject(t, wire.Open{AS: 2, HoldTimeSecs: 90})
	if h.p.State() != StateIdle {
		t.Fatalf("state = %v, want Idle after duplicate OPEN", h.p.State())
	}
}

func TestFSMNotificationResets(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	h.inject(t, wire.Notification{Code: wire.NotifCease})
	if h.p.State() != StateIdle {
		t.Fatalf("state = %v, want Idle", h.p.State())
	}
	// With the transport still up, the session retries and reopens.
	if err := h.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.p.State() != StateOpenSent {
		t.Fatalf("state = %v, want OpenSent after retry", h.p.State())
	}
}

func TestFSMHoldTimeNegotiation(t *testing.T) {
	h := newHarness(t)
	h.p.TransportUp()
	// Remote proposes 30s (lower than our 90s default): negotiated
	// hold is 30s; silence for >30s must reset.
	h.inject(t, wire.Open{AS: 2, HoldTimeSecs: 30,
		ID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.2"))})
	h.inject(t, wire.Keepalive{})
	if h.p.State() != StateEstablished {
		t.Fatal("setup failed")
	}
	if h.p.holdTime != 30*time.Second {
		t.Fatalf("negotiated hold = %v, want 30s", h.p.holdTime)
	}
	if err := h.k.RunFor(31 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.p.State() == StateEstablished {
		t.Fatal("hold timer should have expired")
	}
}

func TestFSMKeepalivesMaintainSession(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	// Feed keepalives every 20s; session must stay up well past the
	// 90s hold time.
	for i := 0; i < 10; i++ {
		if err := h.k.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		h.inject(t, wire.Keepalive{})
	}
	if h.p.State() != StateEstablished {
		t.Fatalf("state = %v after 200s with keepalives", h.p.State())
	}
	// Our side must have been sending keepalives too (hold/3 = 30s).
	if h.r.Stats().KeepalivesSent < 6 {
		t.Fatalf("keepalives sent = %d", h.r.Stats().KeepalivesSent)
	}
}

func TestPolicyImportRejectionActsAsWithdraw(t *testing.T) {
	// A policy that rejects a prefix must also flush a previously
	// accepted route for it (treat-as-withdraw).
	k := sim.NewKernel(1)
	deny := netip.MustParsePrefix("10.0.9.0/24")
	pol := policy.PrefixFilter{Inner: policy.PermitAll{}, DenyImport: map[netip.Prefix]bool{}}
	r, err := New(Config{
		ASN: 1, RouterID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.1")),
		Clock: k, Rand: k.Rand(),
		Timers: Timers{MRAI: time.Second, MRAIJitter: false},
		Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent [][]byte
	p, err := r.AddPeer(PeerConfig{
		Key: "to-AS2", RemoteASN: 2,
		NextHop: netip.MustParseAddr("100.64.0.1"),
		Send:    func(b []byte) error { sent = append(sent, b); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.TransportUp()
	open, _ := wire.Marshal(wire.Open{AS: 2, HoldTimeSecs: 90})
	r.Deliver("to-AS2", open)
	ka, _ := wire.Marshal(wire.Keepalive{})
	r.Deliver("to-AS2", ka)
	announce := func() {
		u, _ := wire.Marshal(wire.Update{
			Attrs: wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(2),
				NextHop: netip.MustParseAddr("100.64.0.2")},
			NLRI: []netip.Prefix{deny},
		})
		r.Deliver("to-AS2", u)
	}
	announce()
	if _, ok := r.Table().Best(deny); !ok {
		t.Fatal("route should be accepted before the filter turns on")
	}
	// Turn the filter on and re-announce: the route must vanish.
	pol.DenyImport[deny] = true
	announce()
	if _, ok := r.Table().Best(deny); ok {
		t.Fatal("rejected re-announcement should act as withdrawal")
	}
}

func TestWriteRIBAndAdjIn(t *testing.T) {
	h := newHarness(t)
	h.establish(t)
	if err := h.r.Announce(netip.MustParsePrefix("10.0.1.0/24")); err != nil {
		t.Fatal(err)
	}
	h.inject(t, wire.Update{
		Attrs: wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(2),
			NextHop: netip.MustParseAddr("100.64.0.2")},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.2.0/24")},
	})
	var sb strings.Builder
	if err := h.r.WriteRIB(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"AS1 RIB (2 routes", "10.0.1.0/24", "local", "10.0.2.0/24", "path=[2]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RIB dump missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := h.r.WriteAdjIn(&sb, "to-AS2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Adj-RIB-In from to-AS2 (1 routes)") {
		t.Fatalf("AdjIn dump = %s", sb.String())
	}
}

func TestProcessingDelaySerializesUpdates(t *testing.T) {
	// With a processing delay, two updates delivered back to back are
	// handled at least one delay apart.
	k := sim.NewKernel(1)
	r, err := New(Config{
		ASN: 1, RouterID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.1")),
		Clock: k, Rand: k.Rand(),
		Timers:          Timers{MRAI: time.Second, MRAIJitter: false},
		ProcessingDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AddPeer(PeerConfig{
		Key: "to-AS2", RemoteASN: 2,
		NextHop: netip.MustParseAddr("100.64.0.1"),
		Send:    func([]byte) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.TransportUp()
	for _, m := range []wire.Message{
		wire.Open{AS: 2, HoldTimeSecs: 90},
		wire.Keepalive{},
	} {
		frame, _ := wire.Marshal(m)
		r.Deliver("to-AS2", frame)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if p.State() != StateEstablished {
		t.Fatalf("state = %v (control messages must not be delayed)", p.State())
	}
	var times []time.Duration
	trace := r.cfg
	trace.Trace = func(ev TraceEvent) {
		if ev.Kind == TraceRecv && ev.Msg.Type() == wire.MsgUpdate {
			times = append(times, k.Elapsed())
		}
	}
	r.cfg = trace
	for i := 0; i < 2; i++ {
		u, _ := wire.Marshal(wire.Update{
			Attrs: wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(2),
				NextHop: netip.MustParseAddr("100.64.0.2")},
			NLRI: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)},
		})
		r.Deliver("to-AS2", u)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("updates processed = %d", len(times))
	}
	if gap := times[1] - times[0]; gap < 10*time.Millisecond {
		t.Fatalf("updates processed only %v apart; want serialized", gap)
	}
	// Config validation for the delay model.
	if _, err := New(Config{ASN: 1, Clock: k, ProcessingDelay: -time.Second}); err == nil {
		t.Fatal("negative delay should error")
	}
	if _, err := New(Config{ASN: 1, Clock: k, Timers: Timers{MRAIJitter: false}, ProcessingDelay: time.Second}); err == nil {
		t.Fatal("delay without rand should error")
	}
}

// sanity: topology import used by the lab helper stays referenced.
var _ = topology.KindPeer
