package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
)

// Snapshot support: RouterState is the complete serializable state of
// one converged speaker — every RIB, every session FSM, the damping
// histories and the activity counters. RIB contents are restored by
// REPLAYING them through the table's own mutation methods (Originate/
// SetAdjIn/Set), so the decision process rebuilds the best map and the
// candidate indexes rather than trusting serialized derived state;
// timers are restored as (deadline, original sequence) references that
// the experiment layer re-arms in globally sorted order.

// RouteState serializes one rib.Route.
type RouteState struct {
	// Prefix, Attrs, Peer, PeerASN, PeerID and Local mirror rib.Route.
	Prefix  netip.Prefix   `json:"prefix"`
	Attrs   wire.PathAttrs `json:"attrs"`
	Peer    rib.PeerKey    `json:"peer,omitempty"`
	PeerASN idr.ASN        `json:"peer_asn,omitempty"`
	PeerID  idr.RouterID   `json:"peer_id,omitempty"`
	Local   bool           `json:"local,omitempty"`
}

// routeState serializes a RIB route.
func routeState(r *rib.Route) RouteState {
	return RouteState{
		Prefix:  r.Prefix,
		Attrs:   r.Attrs,
		Peer:    r.Peer,
		PeerASN: r.PeerASN,
		PeerID:  r.PeerID,
		Local:   r.Local,
	}
}

// route rebuilds the RIB route.
func (s RouteState) route() *rib.Route {
	return &rib.Route{
		Prefix:  s.Prefix,
		Attrs:   s.Attrs,
		Peer:    s.Peer,
		PeerASN: s.PeerASN,
		PeerID:  s.PeerID,
		Local:   s.Local,
	}
}

// PrefixAttrs pairs a prefix with an attribute set (originations,
// pending announcements).
type PrefixAttrs struct {
	// Prefix is the route's prefix.
	Prefix netip.Prefix `json:"prefix"`
	// Attrs is the attribute set.
	Attrs wire.PathAttrs `json:"attrs"`
}

// AdjOutEntry is one advertised (peer, prefix, attrs) record.
type AdjOutEntry struct {
	// Peer is the session the advertisement went to.
	Peer rib.PeerKey `json:"peer"`
	// Prefix and Attrs are the advertised route.
	Prefix netip.Prefix   `json:"prefix"`
	Attrs  wire.PathAttrs `json:"attrs"`
}

// PeerSnap is the serializable state of one session.
type PeerSnap struct {
	// Key identifies the session on its router.
	Key rib.PeerKey `json:"key"`
	// State is the FSM state.
	State State `json:"state"`
	// TransportUp mirrors the transport signal.
	TransportUp bool `json:"transport_up"`
	// RemoteID and RemoteASN were learned from the neighbor's OPEN.
	RemoteID  idr.RouterID `json:"remote_id"`
	RemoteASN idr.ASN      `json:"remote_asn"`
	// HoldTimeNS is the negotiated hold time in nanoseconds.
	HoldTimeNS int64 `json:"hold_time_ns"`
	// NextAdvNS is when the next announcement flush may happen
	// (sim.TimeNone when unset).
	NextAdvNS int64 `json:"next_adv_ns"`
	// PendingAnnounce and PendingWithdraw are the queued outbound
	// route changes, sorted by prefix.
	PendingAnnounce []PrefixAttrs  `json:"pending_announce,omitempty"`
	PendingWithdraw []netip.Prefix `json:"pending_withdraw,omitempty"`
	// Hold, Keepalive, Retry and Mrai reference the pending timers.
	Hold      *sim.TimerRef `json:"hold,omitempty"`
	Keepalive *sim.TimerRef `json:"keepalive,omitempty"`
	Retry     *sim.TimerRef `json:"retry,omitempty"`
	Mrai      *sim.TimerRef `json:"mrai,omitempty"`
}

// DampEntry is one (session, prefix) flap history.
type DampEntry struct {
	// Peer and Prefix key the history.
	Peer   rib.PeerKey  `json:"peer"`
	Prefix netip.Prefix `json:"prefix"`
	// Penalty is the accumulated figure of merit at UpdatedNS.
	Penalty float64 `json:"penalty"`
	// UpdatedNS is when the penalty was last touched.
	UpdatedNS int64 `json:"updated_ns"`
	// Suppressed reports an active suppression.
	Suppressed bool `json:"suppressed"`
	// Latest is the held-back route a reuse would reinstate.
	Latest *RouteState `json:"latest,omitempty"`
	// Reuse references the pending reuse timer.
	Reuse *sim.TimerRef `json:"reuse,omitempty"`
}

// RouterState is the complete serializable state of one Router.
type RouterState struct {
	// Originated lists the locally-announced prefixes, sorted.
	Originated []PrefixAttrs `json:"originated,omitempty"`
	// AdjIn lists every Adj-RIB-In route, sorted by (peer, prefix).
	// The Loc-RIB is not serialized: the decision process rebuilds it
	// deterministically during replay.
	AdjIn []RouteState `json:"adj_in,omitempty"`
	// AdjOut lists every advertised route, sorted by (peer, prefix).
	AdjOut []AdjOutEntry `json:"adj_out,omitempty"`
	// Stats are the activity counters, verbatim.
	Stats Stats `json:"stats"`
	// BusyUntilNS is the processing-delay work-queue horizon
	// (sim.TimeNone when idle since the epoch).
	BusyUntilNS int64 `json:"busy_until_ns"`
	// Peers holds one entry per session, sorted by key.
	Peers []PeerSnap `json:"peers,omitempty"`
	// Damping holds the flap histories, sorted by (peer, prefix)
	// (only when damping is configured).
	Damping []DampEntry `json:"damping,omitempty"`
}

// State captures the router's serializable state.
func (r *Router) State() RouterState {
	st := RouterState{
		Stats:       r.stats,
		BusyUntilNS: sim.TimeToNS(r.busyUntil),
	}
	for _, prefix := range r.Originated() {
		st.Originated = append(st.Originated, PrefixAttrs{Prefix: prefix, Attrs: r.originated[prefix]})
	}
	for _, peer := range r.table.AdjInPeerKeys() {
		for _, prefix := range r.table.AdjInPrefixes(peer) {
			rt, _ := r.table.AdjIn(peer, prefix)
			st.AdjIn = append(st.AdjIn, routeState(rt))
		}
	}
	for _, peer := range r.adjOut.Peers() {
		for _, prefix := range r.adjOut.Prefixes(peer) {
			attrs, _ := r.adjOut.Get(peer, prefix)
			st.AdjOut = append(st.AdjOut, AdjOutEntry{Peer: peer, Prefix: prefix, Attrs: attrs})
		}
	}
	for _, p := range r.peerList {
		st.Peers = append(st.Peers, p.snap())
	}
	if r.damping != nil {
		st.Damping = r.damping.snap()
	}
	return st
}

// RestoreState overlays a captured state onto a freshly built router
// with the identical configuration (same peers added in the same
// order). RIB contents replay through the table's mutation methods —
// no advertisements are scheduled because the replay runs before the
// session states are overlaid. The returned timer arms must be
// executed by the caller (globally sorted across all components)
// before the kernel adopts its captured counters.
func (r *Router) RestoreState(st RouterState) ([]sim.TimerArm, error) {
	for _, oa := range st.Originated {
		r.originated[oa.Prefix] = oa.Attrs
		r.table.Originate(oa.Prefix, oa.Attrs)
	}
	for _, rs := range st.AdjIn {
		r.table.SetAdjIn(rs.route())
	}
	for _, ae := range st.AdjOut {
		r.adjOut.Set(ae.Peer, ae.Prefix, ae.Attrs)
	}
	r.stats = st.Stats
	r.busyUntil = sim.TimeFromNS(st.BusyUntilNS)
	var arms []sim.TimerArm
	for _, ps := range st.Peers {
		p, ok := r.peers[ps.Key]
		if !ok {
			return nil, fmt.Errorf("bgp: restore: router %v has no peer %q", r.cfg.ASN, ps.Key)
		}
		arms = append(arms, p.restore(ps)...)
	}
	if len(st.Damping) > 0 {
		if r.damping == nil {
			return nil, fmt.Errorf("bgp: restore: router %v has damping state but damping is not configured", r.cfg.ASN)
		}
		arms = append(arms, r.damping.restore(st.Damping)...)
	}
	return arms, nil
}

// snap captures the session's serializable state.
func (p *Peer) snap() PeerSnap {
	ps := PeerSnap{
		Key:         p.cfg.Key,
		State:       p.state,
		TransportUp: p.transportUp,
		RemoteID:    p.remoteID,
		RemoteASN:   p.remoteASN,
		HoldTimeNS:  int64(p.holdTime),
		NextAdvNS:   sim.TimeToNS(p.nextAdvAllowed),
		Hold:        sim.RefOf(p.holdTimer),
		Keepalive:   sim.RefOf(p.keepaliveTimer),
		Retry:       sim.RefOf(p.retryTimer),
		Mrai:        sim.RefOf(p.mraiTimer),
	}
	annPrefixes := make([]netip.Prefix, 0, len(p.pendingAnnounce))
	for prefix := range p.pendingAnnounce {
		annPrefixes = append(annPrefixes, prefix)
	}
	sort.Slice(annPrefixes, func(i, j int) bool { return idr.PrefixLess(annPrefixes[i], annPrefixes[j]) })
	for _, prefix := range annPrefixes {
		ps.PendingAnnounce = append(ps.PendingAnnounce, PrefixAttrs{Prefix: prefix, Attrs: p.pendingAnnounce[prefix]})
	}
	wdPrefixes := make([]netip.Prefix, 0, len(p.pendingWithdraw))
	for prefix := range p.pendingWithdraw {
		wdPrefixes = append(wdPrefixes, prefix)
	}
	sort.Slice(wdPrefixes, func(i, j int) bool { return idr.PrefixLess(wdPrefixes[i], wdPrefixes[j]) })
	ps.PendingWithdraw = wdPrefixes
	return ps
}

// restore overlays a captured session state, returning the timer arms
// for the experiment layer to execute in global order. The re-armed
// callbacks are the same methods the live timers run, so a restored
// session behaves identically from the first firing on.
func (p *Peer) restore(ps PeerSnap) []sim.TimerArm {
	p.state = ps.State
	p.transportUp = ps.TransportUp
	p.remoteID = ps.RemoteID
	p.remoteASN = ps.RemoteASN
	p.holdTime = time.Duration(ps.HoldTimeNS)
	p.nextAdvAllowed = sim.TimeFromNS(ps.NextAdvNS)
	for _, pa := range ps.PendingAnnounce {
		p.pendingAnnounce[pa.Prefix] = pa.Attrs
	}
	for _, prefix := range ps.PendingWithdraw {
		p.pendingWithdraw[prefix] = true
	}
	var arms []sim.TimerArm
	arm := func(ref *sim.TimerRef, set func(sim.Timer), fire func()) {
		if ref == nil {
			return
		}
		at := ref.Deadline()
		arms = append(arms, sim.TimerArm{At: at, Seq: ref.Seq, Arm: func() {
			set(p.clock().AfterFunc(at.Sub(p.clock().Now()), fire))
		}})
	}
	// In OpenSent the hold timer is the RFC 4271 §8.2.2 guard with a
	// plain reset callback; everywhere else it is the negotiated hold
	// timer that also notifies the neighbor.
	holdFire := p.holdExpire
	if ps.State == StateOpenSent {
		holdFire = p.openGuardExpire
	}
	p.holdIsGuard = ps.State == StateOpenSent
	arm(ps.Hold, func(t sim.Timer) { p.holdTimer = t }, holdFire)
	arm(ps.Keepalive, func(t sim.Timer) { p.keepaliveTimer = t }, p.keepaliveFire)
	arm(ps.Retry, func(t sim.Timer) { p.retryTimer = t }, p.startOpen)
	arm(ps.Mrai, func(t sim.Timer) { p.mraiTimer = t }, p.flushAnnouncements)
	return arms
}

// snap captures the damping engine's flap histories, sorted by
// (peer, prefix).
func (d *damping) snap() []DampEntry {
	peers := make([]rib.PeerKey, 0, len(d.state))
	for k, m := range d.state {
		if len(m) > 0 {
			peers = append(peers, k)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	var out []DampEntry
	for _, peer := range peers {
		m := d.state[peer]
		prefixes := make([]netip.Prefix, 0, len(m))
		for prefix := range m {
			prefixes = append(prefixes, prefix)
		}
		sort.Slice(prefixes, func(i, j int) bool { return idr.PrefixLess(prefixes[i], prefixes[j]) })
		for _, prefix := range prefixes {
			s := m[prefix]
			e := DampEntry{
				Peer:       peer,
				Prefix:     prefix,
				Penalty:    s.penalty,
				UpdatedNS:  sim.TimeToNS(s.updatedAt),
				Suppressed: s.suppressed,
				Reuse:      sim.RefOf(s.reuseTimer),
			}
			if s.latest != nil {
				rs := routeState(s.latest)
				e.Latest = &rs
			}
			out = append(out, e)
		}
	}
	return out
}

// restore overlays captured flap histories, returning the reuse-timer
// arms.
func (d *damping) restore(entries []DampEntry) []sim.TimerArm {
	var arms []sim.TimerArm
	for _, e := range entries {
		s := d.get(e.Peer, e.Prefix)
		s.penalty = e.Penalty
		s.updatedAt = sim.TimeFromNS(e.UpdatedNS)
		s.suppressed = e.Suppressed
		if e.Latest != nil {
			s.latest = e.Latest.route()
		}
		if e.Reuse != nil {
			at := e.Reuse.Deadline()
			peer, prefix, st := e.Peer, e.Prefix, s
			arms = append(arms, sim.TimerArm{At: at, Seq: e.Reuse.Seq, Arm: func() {
				st.reuseTimer = d.router.cfg.Clock.AfterFunc(at.Sub(d.router.cfg.Clock.Now()), func() {
					d.reuse(peer, prefix, st)
				})
			}})
		}
	}
	return arms
}
