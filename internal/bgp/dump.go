package bgp

import (
	"fmt"
	"io"

	"repro/internal/bgp/rib"
)

// WriteRIB renders the router's Loc-RIB in a `show ip bgp`-like form,
// one line per best route, sorted by prefix — the framework's log/RIB
// inspection tool.
func (r *Router) WriteRIB(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s RIB (%d routes, %d sessions established)\n",
		r.cfg.ASN, len(r.table.BestRoutes()), r.EstablishedCount()); err != nil {
		return err
	}
	for _, rt := range r.table.BestRoutes() {
		origin := "learned"
		path := rt.Attrs.ASPath.String()
		if rt.Local {
			origin = "local"
			path = "-"
		}
		nh := "-"
		if rt.Attrs.NextHop.IsValid() {
			nh = rt.Attrs.NextHop.String()
		}
		if _, err := fmt.Fprintf(w, "  %-18s %-8s nh=%-15s lp=%-4d path=[%s]\n",
			rt.Prefix, origin, nh, rt.LocalPref(), path); err != nil {
			return err
		}
	}
	return nil
}

// WriteAdjIn renders one session's Adj-RIB-In.
func (r *Router) WriteAdjIn(w io.Writer, peer rib.PeerKey) error {
	prefixes := r.table.AdjInPrefixes(peer)
	if _, err := fmt.Fprintf(w, "%s Adj-RIB-In from %s (%d routes)\n",
		r.cfg.ASN, peer, len(prefixes)); err != nil {
		return err
	}
	for _, p := range prefixes {
		rt, _ := r.table.AdjIn(peer, p)
		if _, err := fmt.Fprintf(w, "  %-18s path=[%s]\n", p, rt.Attrs.ASPath); err != nil {
			return err
		}
	}
	return nil
}
