package bgp

import (
	"testing"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
)

// The export hot path re-prepends the same learned paths for every
// advertisement; after the first build the arena must serve them
// without allocating.
func TestArenaPrependSteadyStateZeroAlloc(t *testing.T) {
	var a attrArena
	paths := []wire.ASPath{
		wire.NewASPath(2, 3, 4),
		wire.NewASPath(5, 6),
		wire.NewASPath(7),
	}
	for _, p := range paths {
		a.prepend(p, 1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range paths {
			a.prepend(p, 1)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm arena prepend allocates %v times per run, want 0", allocs)
	}
}

// Interned results must be the correct prepend, shared across calls,
// and distinct per prepended ASN even when the source path is shared.
func TestArenaPrependCorrectness(t *testing.T) {
	var a attrArena
	src := wire.NewASPath(2, 3)
	for _, asn := range []idr.ASN{1, 9} {
		got := a.prepend(src, asn)
		want := src.Prepend(asn)
		if !got.Equal(want) {
			t.Fatalf("prepend(%v, %d) = %v, want %v", src, asn, got, want)
		}
		again := a.prepend(src, asn)
		if &got[0] != &again[0] {
			t.Fatalf("repeated prepend(%v, %d) was not served from the arena", src, asn)
		}
	}
}
