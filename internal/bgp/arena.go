package bgp

import (
	"repro/internal/bgp/wire"
	"repro/internal/idr"
)

// attrArena interns the AS paths a router builds when exporting
// routes. A router prepends its own ASN to every path it advertises,
// and in steady state it re-exports the same handful of learned paths
// over and over — to every peer, after every flap cycle, for every
// re-announcement. The arena caches each (source path, prepended ASN)
// result once, so the export hot path hands out a shared immutable
// path instead of allocating a fresh two-level copy per advertisement.
//
// Sharing is safe because the framework treats attribute sets as
// immutable once built (see Policy and exportAttrs): the wire encoder,
// the Adj-RIB-Out diff logic and the flush grouping all read paths
// without mutating them.
//
// The arena is a pure cache derived from traffic: it is never
// serialized, and a restored router simply rebuilds it lazily — which
// keeps it invisible to the snapshot byte-equality pins.
type attrArena struct {
	paths map[uint64][]internedPrepend
}

// internedPrepend is one cached prepend result. src is retained (not
// copied) purely as the lookup identity; it is compared structurally
// on every hit, so hash collisions cost a comparison, never a wrong
// path.
type internedPrepend struct {
	asn idr.ASN
	src wire.ASPath
	out wire.ASPath
}

// prepend returns path with asn prepended, serving repeated requests
// from the cache with zero allocations.
func (a *attrArena) prepend(path wire.ASPath, asn idr.ASN) wire.ASPath {
	h := hashPath(path, asn)
	for _, e := range a.paths[h] {
		if e.asn == asn && e.src.Equal(path) {
			return e.out
		}
	}
	if a.paths == nil {
		a.paths = make(map[uint64][]internedPrepend)
	}
	out := path.Prepend(asn)
	a.paths[h] = append(a.paths[h], internedPrepend{asn: asn, src: path, out: out})
	return out
}

// hashPath is FNV-1a over the prepended ASN and the path's structure.
func hashPath(p wire.ASPath, asn idr.ASN) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(asn)) * prime
	for _, s := range p {
		h = (h ^ uint64(s.Type)) * prime
		h = (h ^ uint64(len(s.ASNs))) * prime
		for _, a := range s.ASNs {
			h = (h ^ uint64(a)) * prime
		}
	}
	return h
}
