// Package sdn implements the cluster's OpenFlow-like switches: flow
// tables with prefix matching, packet-in relay of BGP control traffic
// to the controller (the paper relays "control plane information over
// the switches" to the cluster BGP speaker), and port status
// notifications. One Switch emulates one cluster member AS's device.
package sdn

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/frames"
	"repro/internal/idr"
	"repro/internal/sdn/ofp"
)

// FlowEntry is one programmed flow.
type FlowEntry struct {
	Priority uint16
	Match    netip.Prefix
	OutPort  uint32
}

// FlowTable holds flow entries and answers lookups by highest
// priority, then longest prefix. One entry per match is kept (adds
// replace).
type FlowTable struct {
	entries map[netip.Prefix]FlowEntry
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{entries: make(map[netip.Prefix]FlowEntry)}
}

// Upsert installs or replaces the entry for e.Match.
func (t *FlowTable) Upsert(e FlowEntry) { t.entries[e.Match] = e }

// Delete removes the entry for match, reporting whether it existed.
func (t *FlowTable) Delete(match netip.Prefix) bool {
	if _, ok := t.entries[match]; !ok {
		return false
	}
	delete(t.entries, match)
	return true
}

// Clear removes all entries.
func (t *FlowTable) Clear() { t.entries = make(map[netip.Prefix]FlowEntry) }

// Len returns the number of entries.
func (t *FlowTable) Len() int { return len(t.entries) }

// Lookup returns the matching entry for addr: highest priority wins,
// then longest prefix, then (for determinism) smaller prefix address.
func (t *FlowTable) Lookup(addr netip.Addr) (FlowEntry, bool) {
	var best FlowEntry
	found := false
	for _, e := range t.entries {
		if !e.Match.Contains(addr) {
			continue
		}
		if !found || better(e, best) {
			best = e
			found = true
		}
	}
	return best, found
}

func better(a, b FlowEntry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Match.Bits() != b.Match.Bits() {
		return a.Match.Bits() > b.Match.Bits()
	}
	return idr.PrefixLess(a.Match, b.Match)
}

// Entries returns all entries in deterministic order.
func (t *FlowTable) Entries() []FlowEntry {
	out := make([]FlowEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i].Match, out[j].Match) })
	return out
}

// SwitchStats counts switch activity.
type SwitchStats struct {
	Forwarded, Dropped, PuntedToController uint64
	FlowModsApplied                        uint64
	DeliveredLocal                         uint64
}

// Switch is one cluster member's data-plane device.
type Switch struct {
	asn   idr.ASN
	table *FlowTable

	// sendPort transmits a raw link frame on a numbered port.
	sendPort map[uint32]func([]byte) error
	// sendControl transmits an OpenFlow frame to the controller.
	sendControl func([]byte) error

	// localPrefixes are delivered locally (the member AS's own
	// address space).
	localPrefixes map[netip.Prefix]bool
	// OnLocalDeliver receives probes that terminate at this member.
	OnLocalDeliver func(frames.Probe)

	nextXid uint32
	stats   SwitchStats
}

// NewSwitch creates the switch for member asn. sendControl carries
// OpenFlow frames to the controller; it is required.
func NewSwitch(asn idr.ASN, sendControl func([]byte) error) (*Switch, error) {
	if sendControl == nil {
		return nil, fmt.Errorf("sdn: switch %v needs a control channel", asn)
	}
	return &Switch{
		asn:           asn,
		table:         NewFlowTable(),
		sendPort:      make(map[uint32]func([]byte) error),
		sendControl:   sendControl,
		localPrefixes: make(map[netip.Prefix]bool),
	}, nil
}

// ASN returns the member AS the switch belongs to.
func (s *Switch) ASN() idr.ASN { return s.asn }

// Table exposes the flow table (monitors read it).
func (s *Switch) Table() *FlowTable { return s.table }

// Stats returns a snapshot of the counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

// AddPort registers a data port with its transmit function and
// returns the assigned port number (1-based, in registration order).
func (s *Switch) AddPort(send func([]byte) error) (uint32, error) {
	if send == nil {
		return 0, fmt.Errorf("sdn: nil port transmit on switch %v", s.asn)
	}
	port := uint32(len(s.sendPort) + 1)
	s.sendPort[port] = send
	return port, nil
}

// AddLocalPrefix marks a prefix as terminating at this member.
func (s *Switch) AddLocalPrefix(p netip.Prefix) { s.localPrefixes[p] = true }

// xid returns the next transaction id.
func (s *Switch) xid() uint32 {
	s.nextXid++
	return s.nextXid
}

// NotifyPortState reports a port up/down transition to the controller.
func (s *Switch) NotifyPortState(port uint32, up bool) error {
	frame, err := ofp.Marshal(ofp.PortStatus{Port: port, Up: up}, s.xid())
	if err != nil {
		return err
	}
	return s.sendControl(frame)
}

// HandleControl processes one OpenFlow frame from the controller.
func (s *Switch) HandleControl(frame []byte) error {
	msg, xid, err := ofp.Unmarshal(frame)
	if err != nil {
		return fmt.Errorf("sdn: switch %v: %w", s.asn, err)
	}
	switch m := msg.(type) {
	case ofp.Hello:
		reply, err := ofp.Marshal(ofp.Hello{}, xid)
		if err != nil {
			return err
		}
		return s.sendControl(reply)
	case ofp.EchoRequest:
		reply, err := ofp.Marshal(ofp.EchoReply{Data: m.Data}, xid)
		if err != nil {
			return err
		}
		return s.sendControl(reply)
	case ofp.FeaturesRequest:
		reply, err := ofp.Marshal(ofp.FeaturesReply{
			DatapathID: uint64(s.asn),
			NumPorts:   uint16(len(s.sendPort)),
		}, xid)
		if err != nil {
			return err
		}
		return s.sendControl(reply)
	case ofp.FlowMod:
		s.applyFlowMod(m)
		return nil
	case ofp.PacketOut:
		send, ok := s.sendPort[m.OutPort]
		if !ok {
			return fmt.Errorf("sdn: switch %v: packet-out on unknown port %d", s.asn, m.OutPort)
		}
		return send(m.Data)
	default:
		return fmt.Errorf("sdn: switch %v: unexpected control message %v", s.asn, msg.Type())
	}
}

func (s *Switch) applyFlowMod(m ofp.FlowMod) {
	s.stats.FlowModsApplied++
	switch m.Command {
	case ofp.FlowAdd:
		s.table.Upsert(FlowEntry{Priority: m.Priority, Match: m.Match, OutPort: m.OutPort})
	case ofp.FlowDelete:
		s.table.Delete(m.Match)
	case ofp.FlowDeleteAll:
		s.table.Clear()
	}
}

// HandlePort processes one link frame arriving on a data port.
// BGP control traffic is punted to the controller as PacketIn (the
// cluster BGP speaker's inbound relay); probes are forwarded by the
// flow table.
func (s *Switch) HandlePort(port uint32, frame []byte) error {
	kind, payload, err := frames.Decode(frame)
	if err != nil {
		s.stats.Dropped++
		return err
	}
	switch kind {
	case frames.KindBGP:
		s.stats.PuntedToController++
		pin, err := ofp.Marshal(ofp.PacketIn{InPort: port, Data: payload}, s.xid())
		if err != nil {
			return err
		}
		return s.sendControl(pin)
	case frames.KindProbe:
		return s.forwardProbe(frame, payload)
	default:
		s.stats.Dropped++
		return fmt.Errorf("sdn: switch %v: unexpected %v frame on data port %d", s.asn, kind, port)
	}
}

// InjectProbe handles a probe originating at this member (from an
// attached monitoring host).
func (s *Switch) InjectProbe(p frames.Probe) error {
	payload, err := frames.EncodeProbe(p)
	if err != nil {
		return err
	}
	return s.forwardProbe(frames.Encode(frames.KindProbe, payload), payload)
}

func (s *Switch) forwardProbe(frame, payload []byte) error {
	probe, err := frames.DecodeProbe(payload)
	if err != nil {
		s.stats.Dropped++
		return err
	}
	// Local delivery?
	for p := range s.localPrefixes {
		if p.Contains(probe.Dst) {
			s.stats.DeliveredLocal++
			if s.OnLocalDeliver != nil {
				s.OnLocalDeliver(probe)
			}
			return nil
		}
	}
	if probe.TTL == 0 {
		s.stats.Dropped++
		return nil
	}
	entry, ok := s.table.Lookup(probe.Dst)
	if !ok || entry.OutPort == ofp.PortDrop {
		s.stats.Dropped++
		return nil
	}
	if entry.OutPort == ofp.PortController {
		s.stats.PuntedToController++
		pin, err := ofp.Marshal(ofp.PacketIn{InPort: 0, Data: payload}, s.xid())
		if err != nil {
			return err
		}
		return s.sendControl(pin)
	}
	send, ok := s.sendPort[entry.OutPort]
	if !ok {
		s.stats.Dropped++
		return fmt.Errorf("sdn: switch %v: flow to unknown port %d", s.asn, entry.OutPort)
	}
	probe.TTL--
	out, err := frames.EncodeProbe(probe)
	if err != nil {
		return err
	}
	s.stats.Forwarded++
	return send(frames.Encode(frames.KindProbe, out))
}
