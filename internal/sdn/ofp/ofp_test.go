package ofp

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message, xid uint32) Message {
	t.Helper()
	b, err := Marshal(m, xid)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m, err)
	}
	out, gotXid, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if gotXid != xid {
		t.Fatalf("xid = %d, want %d", gotXid, xid)
	}
	return out
}

func TestHelloAndFeatures(t *testing.T) {
	if m := roundTrip(t, Hello{}, 7); m.Type() != TypeHello {
		t.Fatal("hello type wrong")
	}
	if m := roundTrip(t, FeaturesRequest{}, 8); m.Type() != TypeFeaturesRequest {
		t.Fatal("features request type wrong")
	}
	fr := roundTrip(t, FeaturesReply{DatapathID: 1234567890123, NumPorts: 17}, 9).(FeaturesReply)
	if fr.DatapathID != 1234567890123 || fr.NumPorts != 17 {
		t.Fatalf("features reply = %+v", fr)
	}
}

func TestEcho(t *testing.T) {
	req := roundTrip(t, EchoRequest{Data: []byte("ping")}, 1).(EchoRequest)
	if string(req.Data) != "ping" {
		t.Fatal("echo request data lost")
	}
	rep := roundTrip(t, EchoReply{Data: []byte("pong")}, 2).(EchoReply)
	if string(rep.Data) != "pong" {
		t.Fatal("echo reply data lost")
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	in := FlowMod{
		Command:  FlowAdd,
		Priority: 24,
		Match:    netip.MustParsePrefix("10.0.3.0/24"),
		OutPort:  5,
	}
	out := roundTrip(t, in, 42).(FlowMod)
	if out != in {
		t.Fatalf("round trip: %+v -> %+v", in, out)
	}
	del := roundTrip(t, FlowMod{Command: FlowDeleteAll, Match: netip.MustParsePrefix("0.0.0.0/0")}, 1).(FlowMod)
	if del.Command != FlowDeleteAll {
		t.Fatal("delete-all lost")
	}
	drop := roundTrip(t, FlowMod{Command: FlowAdd, Match: netip.MustParsePrefix("10.0.0.0/8"), OutPort: PortDrop}, 1).(FlowMod)
	if drop.OutPort != PortDrop {
		t.Fatal("drop port lost")
	}
}

func TestFlowModValidation(t *testing.T) {
	if _, err := Marshal(FlowMod{Command: FlowAdd, Match: netip.MustParsePrefix("2001:db8::/32")}, 0); err == nil {
		t.Fatal("IPv6 match should fail")
	}
	if _, err := Marshal(FlowMod{Command: 0, Match: netip.MustParsePrefix("10.0.0.0/8")}, 0); err == nil {
		t.Fatal("bad command should fail")
	}
}

func TestPacketInOut(t *testing.T) {
	pi := roundTrip(t, PacketIn{InPort: 3, Data: []byte{1, 2, 3}}, 5).(PacketIn)
	if pi.InPort != 3 || !bytes.Equal(pi.Data, []byte{1, 2, 3}) {
		t.Fatalf("packet-in = %+v", pi)
	}
	po := roundTrip(t, PacketOut{OutPort: 9, Data: []byte{4}}, 6).(PacketOut)
	if po.OutPort != 9 || !bytes.Equal(po.Data, []byte{4}) {
		t.Fatalf("packet-out = %+v", po)
	}
	// Empty payloads are legal.
	pi2 := roundTrip(t, PacketIn{InPort: 1}, 7).(PacketIn)
	if len(pi2.Data) != 0 {
		t.Fatal("empty data should round trip")
	}
}

func TestPortStatus(t *testing.T) {
	up := roundTrip(t, PortStatus{Port: 2, Up: true}, 1).(PortStatus)
	if !up.Up || up.Port != 2 {
		t.Fatalf("port status = %+v", up)
	}
	down := roundTrip(t, PortStatus{Port: 4, Up: false}, 1).(PortStatus)
	if down.Up {
		t.Fatal("down status lost")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, _ := Marshal(Hello{}, 1)
	if _, _, err := Unmarshal(good[:4]); err == nil {
		t.Fatal("short frame should fail")
	}
	badVer := append([]byte(nil), good...)
	badVer[0] = 99
	if _, _, err := Unmarshal(badVer); err == nil {
		t.Fatal("bad version should fail")
	}
	badLen := append([]byte(nil), good...)
	badLen[3] = 99
	if _, _, err := Unmarshal(badLen); err == nil {
		t.Fatal("bad length should fail")
	}
	badType := append([]byte(nil), good...)
	badType[1] = 200
	if _, _, err := Unmarshal(badType); err == nil {
		t.Fatal("bad type should fail")
	}
	// Truncated FlowMod body.
	fm, _ := Marshal(FlowMod{Command: FlowAdd, Match: netip.MustParsePrefix("10.0.0.0/8"), OutPort: 1}, 0)
	trunc := fm[:len(fm)-2]
	trunc[2] = byte(len(trunc) >> 8)
	trunc[3] = byte(len(trunc))
	if _, _, err := Unmarshal(trunc); err == nil {
		t.Fatal("truncated flow mod should fail")
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{TypeHello, TypeEchoRequest, TypeEchoReply, TypeFeaturesRequest,
		TypeFeaturesReply, TypeFlowMod, TypePacketIn, TypePacketOut, TypePortStatus, Type(99)} {
		if typ.String() == "" {
			t.Fatalf("Type(%d).String empty", typ)
		}
	}
}

// Property: Unmarshal never panics on arbitrary bytes.
func TestPropertyUnmarshalNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("panic")
			}
		}()
		_, _, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FlowMod round-trips for arbitrary valid prefixes.
func TestPropertyFlowModRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		var a4 [4]byte
		rng.Read(a4[:])
		in := FlowMod{
			Command:  FlowCommand(1 + rng.Intn(3)),
			Priority: uint16(rng.Intn(1 << 16)),
			Match:    netip.PrefixFrom(netip.AddrFrom4(a4), rng.Intn(33)).Masked(),
			OutPort:  rng.Uint32(),
		}
		b, err := Marshal(in, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if out.(FlowMod) != in {
			t.Fatalf("round trip: %+v -> %+v", in, out)
		}
	}
}
