// Package ofp implements the switch-controller control protocol of the
// framework's SDN cluster: a compact OpenFlow-1.0-inspired binary
// protocol with exactly the subset of messages the IDR controller
// needs — session hello/echo, datapath features, flow programming
// (prefix match -> output port), packet-in/out relay for the cluster
// BGP speaker's control traffic, and port status notifications.
package ofp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Version is the protocol version byte.
const Version uint8 = 1

// Type is the message type octet.
type Type uint8

// Message types.
const (
	TypeHello Type = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeFlowMod
	TypePacketIn
	TypePacketOut
	TypePortStatus
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypePacketIn:
		return "PACKET_IN"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypePortStatus:
		return "PORT_STATUS"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

const headerLen = 8 // version(1) type(1) length(2) xid(4)

// Message is one decoded control message.
type Message interface {
	Type() Type
}

// Hello opens a control session.
type Hello struct{}

// Type implements Message.
func (Hello) Type() Type { return TypeHello }

// EchoRequest is a liveness probe from either side.
type EchoRequest struct{ Data []byte }

// Type implements Message.
func (EchoRequest) Type() Type { return TypeEchoRequest }

// EchoReply answers an EchoRequest with the same data.
type EchoReply struct{ Data []byte }

// Type implements Message.
func (EchoReply) Type() Type { return TypeEchoReply }

// FeaturesRequest asks the switch for its identity.
type FeaturesRequest struct{}

// Type implements Message.
func (FeaturesRequest) Type() Type { return TypeFeaturesRequest }

// FeaturesReply announces the switch's datapath ID (the member AS
// number in this framework) and its port count.
type FeaturesReply struct {
	DatapathID uint64
	NumPorts   uint16
}

// Type implements Message.
func (FeaturesReply) Type() Type { return TypeFeaturesReply }

// FlowCommand selects the FlowMod operation.
type FlowCommand uint8

// Flow commands.
const (
	FlowAdd FlowCommand = iota + 1
	FlowDelete
	FlowDeleteAll
)

// FlowMod programs one flow entry: match IPv4 destination prefix,
// action output on a port (PortDrop blackholes).
type FlowMod struct {
	Command  FlowCommand
	Priority uint16
	Match    netip.Prefix
	OutPort  uint32
}

// Type implements Message.
func (FlowMod) Type() Type { return TypeFlowMod }

// PortDrop as an OutPort blackholes matching packets explicitly.
const PortDrop uint32 = 0xFFFFFFFF

// PortController as an OutPort punts matching packets to the
// controller as PacketIn.
const PortController uint32 = 0xFFFFFFFE

// PacketIn relays a packet received on a switch port to the
// controller (the cluster speaker's inbound path).
type PacketIn struct {
	InPort uint32
	Data   []byte
}

// Type implements Message.
func (PacketIn) Type() Type { return TypePacketIn }

// PacketOut instructs the switch to emit a packet on a port (the
// cluster speaker's outbound path).
type PacketOut struct {
	OutPort uint32
	Data    []byte
}

// Type implements Message.
func (PacketOut) Type() Type { return TypePacketOut }

// PortStatus notifies the controller of a port state change.
type PortStatus struct {
	Port uint32
	Up   bool
}

// Type implements Message.
func (PortStatus) Type() Type { return TypePortStatus }

// Marshal encodes msg with the given transaction id.
func Marshal(msg Message, xid uint32) ([]byte, error) {
	var body []byte
	switch m := msg.(type) {
	case Hello, FeaturesRequest:
		// empty body
	case EchoRequest:
		body = m.Data
	case EchoReply:
		body = m.Data
	case FeaturesReply:
		body = make([]byte, 10)
		binary.BigEndian.PutUint64(body, m.DatapathID)
		binary.BigEndian.PutUint16(body[8:], m.NumPorts)
	case FlowMod:
		if !m.Match.Addr().Is4() {
			return nil, fmt.Errorf("ofp: flow match %v is not IPv4", m.Match)
		}
		if m.Command < FlowAdd || m.Command > FlowDeleteAll {
			return nil, fmt.Errorf("ofp: bad flow command %d", m.Command)
		}
		body = make([]byte, 12)
		body[0] = byte(m.Command)
		binary.BigEndian.PutUint16(body[1:], m.Priority)
		a4 := m.Match.Addr().As4()
		copy(body[3:], a4[:])
		body[7] = byte(m.Match.Bits())
		binary.BigEndian.PutUint32(body[8:], m.OutPort)
	case PacketIn:
		body = make([]byte, 4+len(m.Data))
		binary.BigEndian.PutUint32(body, m.InPort)
		copy(body[4:], m.Data)
	case PacketOut:
		body = make([]byte, 4+len(m.Data))
		binary.BigEndian.PutUint32(body, m.OutPort)
		copy(body[4:], m.Data)
	case PortStatus:
		body = make([]byte, 5)
		binary.BigEndian.PutUint32(body, m.Port)
		if m.Up {
			body[4] = 1
		}
	default:
		return nil, fmt.Errorf("ofp: unknown message %T", msg)
	}
	total := headerLen + len(body)
	if total > 0xFFFF {
		return nil, fmt.Errorf("ofp: message too long (%d)", total)
	}
	out := make([]byte, total)
	out[0] = Version
	out[1] = byte(msg.Type())
	binary.BigEndian.PutUint16(out[2:], uint16(total))
	binary.BigEndian.PutUint32(out[4:], xid)
	copy(out[headerLen:], body)
	return out, nil
}

// Unmarshal decodes one control frame, returning the message and its
// transaction id.
func Unmarshal(b []byte) (Message, uint32, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("ofp: short frame (%d bytes)", len(b))
	}
	if b[0] != Version {
		return nil, 0, fmt.Errorf("ofp: unsupported version %d", b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length != len(b) {
		return nil, 0, fmt.Errorf("ofp: length field %d != frame size %d", length, len(b))
	}
	xid := binary.BigEndian.Uint32(b[4:])
	body := b[headerLen:]
	switch Type(b[1]) {
	case TypeHello:
		return Hello{}, xid, nil
	case TypeEchoRequest:
		return EchoRequest{Data: append([]byte(nil), body...)}, xid, nil
	case TypeEchoReply:
		return EchoReply{Data: append([]byte(nil), body...)}, xid, nil
	case TypeFeaturesRequest:
		return FeaturesRequest{}, xid, nil
	case TypeFeaturesReply:
		if len(body) != 10 {
			return nil, 0, fmt.Errorf("ofp: features reply body %d bytes", len(body))
		}
		return FeaturesReply{
			DatapathID: binary.BigEndian.Uint64(body),
			NumPorts:   binary.BigEndian.Uint16(body[8:]),
		}, xid, nil
	case TypeFlowMod:
		if len(body) != 12 {
			return nil, 0, fmt.Errorf("ofp: flow mod body %d bytes", len(body))
		}
		cmd := FlowCommand(body[0])
		if cmd < FlowAdd || cmd > FlowDeleteAll {
			return nil, 0, fmt.Errorf("ofp: bad flow command %d", cmd)
		}
		bits := int(body[7])
		if bits > 32 {
			return nil, 0, fmt.Errorf("ofp: match bits %d", bits)
		}
		var a4 [4]byte
		copy(a4[:], body[3:7])
		prefix := netip.PrefixFrom(netip.AddrFrom4(a4), bits)
		if prefix.Masked() != prefix {
			return nil, 0, fmt.Errorf("ofp: match %v has host bits", prefix)
		}
		return FlowMod{
			Command:  cmd,
			Priority: binary.BigEndian.Uint16(body[1:]),
			Match:    prefix,
			OutPort:  binary.BigEndian.Uint32(body[8:]),
		}, xid, nil
	case TypePacketIn:
		if len(body) < 4 {
			return nil, 0, fmt.Errorf("ofp: packet-in body %d bytes", len(body))
		}
		return PacketIn{
			InPort: binary.BigEndian.Uint32(body),
			Data:   append([]byte(nil), body[4:]...),
		}, xid, nil
	case TypePacketOut:
		if len(body) < 4 {
			return nil, 0, fmt.Errorf("ofp: packet-out body %d bytes", len(body))
		}
		return PacketOut{
			OutPort: binary.BigEndian.Uint32(body),
			Data:    append([]byte(nil), body[4:]...),
		}, xid, nil
	case TypePortStatus:
		if len(body) != 5 {
			return nil, 0, fmt.Errorf("ofp: port status body %d bytes", len(body))
		}
		return PortStatus{
			Port: binary.BigEndian.Uint32(body),
			Up:   body[4] == 1,
		}, xid, nil
	default:
		return nil, 0, fmt.Errorf("ofp: unknown type %d", b[1])
	}
}
