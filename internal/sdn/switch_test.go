package sdn

import (
	"net/netip"
	"testing"

	"repro/internal/frames"
	"repro/internal/sdn/ofp"
)

func TestFlowTableLookup(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Upsert(FlowEntry{Priority: 10, Match: netip.MustParsePrefix("10.0.0.0/8"), OutPort: 1})
	tbl.Upsert(FlowEntry{Priority: 10, Match: netip.MustParsePrefix("10.1.0.0/16"), OutPort: 2})
	addr := netip.MustParseAddr("10.1.2.3")
	e, ok := tbl.Lookup(addr)
	if !ok || e.OutPort != 2 {
		t.Fatalf("longest prefix should win: %+v", e)
	}
	// Higher priority beats longer prefix.
	tbl.Upsert(FlowEntry{Priority: 99, Match: netip.MustParsePrefix("10.0.0.0/8"), OutPort: 3})
	e, _ = tbl.Lookup(addr)
	if e.OutPort != 3 {
		t.Fatalf("priority should win: %+v", e)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("192.168.1.1")); ok {
		t.Fatal("no match expected")
	}
}

func TestFlowTableUpsertReplaces(t *testing.T) {
	tbl := NewFlowTable()
	m := netip.MustParsePrefix("10.0.0.0/8")
	tbl.Upsert(FlowEntry{Match: m, OutPort: 1})
	tbl.Upsert(FlowEntry{Match: m, OutPort: 2})
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want 1", tbl.Len())
	}
	e, _ := tbl.Lookup(netip.MustParseAddr("10.1.1.1"))
	if e.OutPort != 2 {
		t.Fatal("upsert did not replace")
	}
	if !tbl.Delete(m) || tbl.Delete(m) {
		t.Fatal("delete semantics wrong")
	}
	tbl.Upsert(FlowEntry{Match: m, OutPort: 1})
	tbl.Clear()
	if tbl.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestFlowTableEntriesDeterministic(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Upsert(FlowEntry{Match: netip.MustParsePrefix("10.2.0.0/16"), OutPort: 1})
	tbl.Upsert(FlowEntry{Match: netip.MustParsePrefix("10.1.0.0/16"), OutPort: 2})
	es := tbl.Entries()
	if len(es) != 2 || es[0].Match != netip.MustParsePrefix("10.1.0.0/16") {
		t.Fatalf("Entries = %v", es)
	}
}

// testSwitch builds a switch with captured control and port output.
func testSwitch(t *testing.T) (*Switch, *[][]byte, map[uint32]*[][]byte) {
	t.Helper()
	var control [][]byte
	sw, err := NewSwitch(7, func(b []byte) error {
		control = append(control, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ports := make(map[uint32]*[][]byte)
	for i := 0; i < 3; i++ {
		var sent [][]byte
		p, err := sw.AddPort(func(b []byte) error {
			sent = append(sent, b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ports[p] = &sent
	}
	return sw, &control, ports
}

func mustOFP(t *testing.T, m ofp.Message) []byte {
	t.Helper()
	b, err := ofp.Marshal(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSwitchControlHandshake(t *testing.T) {
	sw, control, _ := testSwitch(t)
	if err := sw.HandleControl(mustOFP(t, ofp.Hello{})); err != nil {
		t.Fatal(err)
	}
	if err := sw.HandleControl(mustOFP(t, ofp.FeaturesRequest{})); err != nil {
		t.Fatal(err)
	}
	if err := sw.HandleControl(mustOFP(t, ofp.EchoRequest{Data: []byte("x")})); err != nil {
		t.Fatal(err)
	}
	if len(*control) != 3 {
		t.Fatalf("control replies = %d, want 3", len(*control))
	}
	fr, _, err := ofp.Unmarshal((*control)[1])
	if err != nil {
		t.Fatal(err)
	}
	feat := fr.(ofp.FeaturesReply)
	if feat.DatapathID != 7 || feat.NumPorts != 3 {
		t.Fatalf("features = %+v", feat)
	}
	er, _, _ := ofp.Unmarshal((*control)[2])
	if string(er.(ofp.EchoReply).Data) != "x" {
		t.Fatal("echo data lost")
	}
}

func TestSwitchFlowModAndProbeForwarding(t *testing.T) {
	sw, _, ports := testSwitch(t)
	fm := ofp.FlowMod{Command: ofp.FlowAdd, Match: netip.MustParsePrefix("10.0.2.0/24"), OutPort: 2}
	if err := sw.HandleControl(mustOFP(t, fm)); err != nil {
		t.Fatal(err)
	}
	probe := frames.Probe{ID: 1, Src: netip.MustParseAddr("10.0.1.10"), Dst: netip.MustParseAddr("10.0.2.10"), TTL: 5}
	if err := sw.InjectProbe(probe); err != nil {
		t.Fatal(err)
	}
	sent := *ports[2]
	if len(sent) != 1 {
		t.Fatalf("port 2 frames = %d, want 1", len(sent))
	}
	kind, payload, err := frames.Decode(sent[0])
	if err != nil || kind != frames.KindProbe {
		t.Fatalf("forwarded frame kind = %v err=%v", kind, err)
	}
	out, err := frames.DecodeProbe(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.TTL != 4 {
		t.Fatalf("TTL = %d, want 4", out.TTL)
	}
	if sw.Stats().Forwarded != 1 {
		t.Fatal("forward not counted")
	}
}

func TestSwitchProbeDropNoMatch(t *testing.T) {
	sw, _, _ := testSwitch(t)
	probe := frames.Probe{ID: 1, Src: netip.MustParseAddr("10.0.1.10"), Dst: netip.MustParseAddr("10.0.2.10"), TTL: 5}
	if err := sw.InjectProbe(probe); err != nil {
		t.Fatal(err)
	}
	if sw.Stats().Dropped != 1 {
		t.Fatal("no-match probe should be dropped")
	}
}

func TestSwitchProbeTTLExpiry(t *testing.T) {
	sw, _, _ := testSwitch(t)
	fm := ofp.FlowMod{Command: ofp.FlowAdd, Match: netip.MustParsePrefix("0.0.0.0/0"), OutPort: 1}
	if err := sw.HandleControl(mustOFP(t, fm)); err != nil {
		t.Fatal(err)
	}
	probe := frames.Probe{ID: 1, Src: netip.MustParseAddr("10.0.1.10"), Dst: netip.MustParseAddr("10.0.2.10"), TTL: 0}
	if err := sw.InjectProbe(probe); err != nil {
		t.Fatal(err)
	}
	if sw.Stats().Dropped != 1 || sw.Stats().Forwarded != 0 {
		t.Fatal("TTL-0 probe must be dropped")
	}
}

func TestSwitchLocalDelivery(t *testing.T) {
	sw, _, _ := testSwitch(t)
	sw.AddLocalPrefix(netip.MustParsePrefix("10.0.7.0/24"))
	var delivered []frames.Probe
	sw.OnLocalDeliver = func(p frames.Probe) { delivered = append(delivered, p) }
	probe := frames.Probe{ID: 9, Src: netip.MustParseAddr("10.0.1.10"), Dst: netip.MustParseAddr("10.0.7.10"), TTL: 3}
	if err := sw.InjectProbe(probe); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 1 || delivered[0].ID != 9 {
		t.Fatalf("delivered = %v", delivered)
	}
	if sw.Stats().DeliveredLocal != 1 {
		t.Fatal("local delivery not counted")
	}
}

func TestSwitchExplicitDrop(t *testing.T) {
	sw, _, _ := testSwitch(t)
	fm := ofp.FlowMod{Command: ofp.FlowAdd, Match: netip.MustParsePrefix("10.0.2.0/24"), OutPort: ofp.PortDrop}
	if err := sw.HandleControl(mustOFP(t, fm)); err != nil {
		t.Fatal(err)
	}
	probe := frames.Probe{ID: 1, Src: netip.MustParseAddr("10.0.1.1"), Dst: netip.MustParseAddr("10.0.2.1"), TTL: 4}
	if err := sw.InjectProbe(probe); err != nil {
		t.Fatal(err)
	}
	if sw.Stats().Dropped != 1 {
		t.Fatal("explicit drop not applied")
	}
}

func TestSwitchBGPPuntsToController(t *testing.T) {
	sw, control, _ := testSwitch(t)
	bgpFrame := frames.Encode(frames.KindBGP, []byte{1, 2, 3, 4})
	if err := sw.HandlePort(1, bgpFrame); err != nil {
		t.Fatal(err)
	}
	if len(*control) != 1 {
		t.Fatalf("control messages = %d, want 1", len(*control))
	}
	msg, _, err := ofp.Unmarshal((*control)[0])
	if err != nil {
		t.Fatal(err)
	}
	pin := msg.(ofp.PacketIn)
	if pin.InPort != 1 || len(pin.Data) != 4 {
		t.Fatalf("packet-in = %+v", pin)
	}
	if sw.Stats().PuntedToController != 1 {
		t.Fatal("punt not counted")
	}
}

func TestSwitchPacketOut(t *testing.T) {
	sw, _, ports := testSwitch(t)
	po := ofp.PacketOut{OutPort: 3, Data: []byte{9, 9}}
	if err := sw.HandleControl(mustOFP(t, po)); err != nil {
		t.Fatal(err)
	}
	if sent := *ports[3]; len(sent) != 1 || len(sent[0]) != 2 {
		t.Fatalf("packet-out output wrong: %v", sent)
	}
	// Unknown port errors.
	bad := ofp.PacketOut{OutPort: 99, Data: []byte{1}}
	if err := sw.HandleControl(mustOFP(t, bad)); err == nil {
		t.Fatal("packet-out to unknown port should error")
	}
}

func TestSwitchFlowDeleteCommands(t *testing.T) {
	sw, _, _ := testSwitch(t)
	m1 := netip.MustParsePrefix("10.0.1.0/24")
	m2 := netip.MustParsePrefix("10.0.2.0/24")
	sw.HandleControl(mustOFP(t, ofp.FlowMod{Command: ofp.FlowAdd, Match: m1, OutPort: 1}))
	sw.HandleControl(mustOFP(t, ofp.FlowMod{Command: ofp.FlowAdd, Match: m2, OutPort: 2}))
	if sw.Table().Len() != 2 {
		t.Fatal("two entries expected")
	}
	sw.HandleControl(mustOFP(t, ofp.FlowMod{Command: ofp.FlowDelete, Match: m1}))
	if sw.Table().Len() != 1 {
		t.Fatal("delete failed")
	}
	sw.HandleControl(mustOFP(t, ofp.FlowMod{Command: ofp.FlowDeleteAll, Match: netip.MustParsePrefix("0.0.0.0/0")}))
	if sw.Table().Len() != 0 {
		t.Fatal("delete-all failed")
	}
	if sw.Stats().FlowModsApplied != 4 {
		t.Fatalf("flow mods = %d", sw.Stats().FlowModsApplied)
	}
}

func TestSwitchValidation(t *testing.T) {
	if _, err := NewSwitch(1, nil); err == nil {
		t.Fatal("nil control channel should error")
	}
	sw, _, _ := testSwitch(t)
	if _, err := sw.AddPort(nil); err == nil {
		t.Fatal("nil port should error")
	}
	if err := sw.HandleControl([]byte{1, 2}); err == nil {
		t.Fatal("garbage control frame should error")
	}
	if err := sw.HandlePort(1, []byte{77}); err == nil {
		t.Fatal("garbage port frame should error")
	}
	if sw.ASN() != 7 {
		t.Fatal("ASN accessor wrong")
	}
	if err := sw.NotifyPortState(2, false); err != nil {
		t.Fatal(err)
	}
}
