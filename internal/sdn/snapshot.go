package sdn

// Snapshot support: SwitchState captures one switch's mutable state —
// the programmed flow table, the transaction-id counter and the
// activity counters. Ports, local prefixes and callbacks are wiring,
// rebuilt identically by construction.

// SwitchState is the serializable state of one Switch.
type SwitchState struct {
	// Flows lists the programmed flow entries in deterministic order.
	Flows []FlowEntry `json:"flows,omitempty"`
	// NextXid is the last OpenFlow transaction id assigned.
	NextXid uint32 `json:"next_xid"`
	// Stats are the activity counters, verbatim.
	Stats SwitchStats `json:"stats"`
}

// State captures the switch's serializable state.
func (s *Switch) State() SwitchState {
	return SwitchState{
		Flows:   s.table.Entries(),
		NextXid: s.nextXid,
		Stats:   s.stats,
	}
}

// RestoreState overlays a captured state onto a freshly built switch
// with the identical wiring.
func (s *Switch) RestoreState(st SwitchState) {
	for _, e := range st.Flows {
		s.table.Upsert(e)
	}
	s.nextXid = st.NextXid
	s.stats = st.Stats
}
