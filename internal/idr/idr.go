// Package idr holds the small vocabulary of inter-domain routing types
// shared by every other package: AS numbers, router identifiers and
// prefix helpers. It is a leaf package with no dependencies beyond the
// standard library.
package idr

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ASN is an Autonomous System number. The framework uses 4-byte AS
// numbers throughout (RFC 6793); values <= 65535 encode as classic
// 2-byte ASNs on the wire.
type ASN uint32

// String renders the ASN in the canonical "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// RouterID is a BGP identifier (RFC 4271 §4.2), by convention the
// router's loopback IPv4 address.
type RouterID [4]byte

// RouterIDFromAddr converts an IPv4 address to a RouterID.
// It panics if addr is not IPv4; router IDs are assigned internally by
// the addressing plan, which only produces IPv4.
func RouterIDFromAddr(addr netip.Addr) RouterID {
	if !addr.Is4() {
		panic(fmt.Sprintf("idr: RouterID from non-IPv4 address %v", addr))
	}
	return RouterID(addr.As4())
}

// Addr returns the router ID as an IPv4 address.
func (r RouterID) Addr() netip.Addr { return netip.AddrFrom4(r) }

// Uint32 returns the router ID as a big-endian integer, the form used
// for BGP decision-process tie-breaking.
func (r RouterID) Uint32() uint32 { return binary.BigEndian.Uint32(r[:]) }

// String renders the router ID in dotted-quad form.
func (r RouterID) String() string { return r.Addr().String() }

// Less orders router IDs numerically (lowest wins BGP tie-breaks).
func (r RouterID) Less(o RouterID) bool { return r.Uint32() < o.Uint32() }

// MustPrefix parses a CIDR string, panicking on error. For use in tests
// and tables of literals only.
func MustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// PrefixLess is a total order over prefixes (by address, then length),
// used to keep RIB dumps and log output deterministic.
func PrefixLess(a, b netip.Prefix) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Bits() < b.Bits()
}
