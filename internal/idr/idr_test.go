package idr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestASNString(t *testing.T) {
	if got := ASN(64500).String(); got != "AS64500" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRouterIDRoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("10.0.0.7")
	id := RouterIDFromAddr(addr)
	if id.Addr() != addr {
		t.Fatalf("Addr() = %v, want %v", id.Addr(), addr)
	}
	if id.String() != "10.0.0.7" {
		t.Fatalf("String() = %q", id.String())
	}
	if id.Uint32() != 0x0a000007 {
		t.Fatalf("Uint32() = %#x", id.Uint32())
	}
}

func TestRouterIDFromAddrPanicsOnIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for IPv6 input")
		}
	}()
	RouterIDFromAddr(netip.MustParseAddr("::1"))
}

func TestRouterIDLess(t *testing.T) {
	lo := RouterIDFromAddr(netip.MustParseAddr("10.0.0.1"))
	hi := RouterIDFromAddr(netip.MustParseAddr("10.0.0.2"))
	if !lo.Less(hi) || hi.Less(lo) {
		t.Fatal("Less ordering wrong")
	}
}

func TestPrefixLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"10.0.0.0/8", "11.0.0.0/8", true},
		{"11.0.0.0/8", "10.0.0.0/8", false},
		{"10.0.0.0/8", "10.0.0.0/16", true},
		{"10.0.0.0/16", "10.0.0.0/8", false},
		{"10.0.0.0/8", "10.0.0.0/8", false},
	}
	for _, c := range cases {
		if got := PrefixLess(MustPrefix(c.a), MustPrefix(c.b)); got != c.want {
			t.Errorf("PrefixLess(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: PrefixLess is a strict weak ordering — irreflexive and
// asymmetric.
func TestPropertyPrefixLessStrict(t *testing.T) {
	f := func(a4, b4 [4]byte, la, lb uint8) bool {
		pa := netip.PrefixFrom(netip.AddrFrom4(a4), int(la%33))
		pb := netip.PrefixFrom(netip.AddrFrom4(b4), int(lb%33))
		if PrefixLess(pa, pa) {
			return false
		}
		if PrefixLess(pa, pb) && PrefixLess(pb, pa) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
