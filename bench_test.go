// Benchmarks regenerating the paper's evaluation, one per figure or
// reported experiment (see EXPERIMENTS.md for the mapping), plus
// ablations and micro-benchmarks of the hot paths.
//
// The figure benches run the actual emulation sweeps in virtual time
// through the internal/figures registry and the internal/lab sweep
// engine; each iteration regenerates the full series. Reported
// metrics: median convergence seconds at 0% and 100% SDN deployment
// and the linear-fit slope. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/figures"
	"repro/internal/idr"
	"repro/internal/lab"
	"repro/internal/sdn"
	"repro/internal/sdn/ofp"
	"repro/internal/sim"
)

// buildSweep resolves a registry spec with the benchmark's overrides.
func buildSweep(b *testing.B, name string, o figures.Options) lab.Sweep {
	b.Helper()
	spec, ok := figures.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	sw, err := spec.Build(o)
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

func reportSweep(b *testing.B, res *lab.SweepResult) {
	b.Helper()
	first, last := res.Cells[0].Summary, res.Cells[len(res.Cells)-1].Summary
	b.ReportMetric(first.Median, "s-pure-median")
	b.ReportMetric(last.Median, "s-full-median")
	_, slope, r2, _ := res.Fit()
	b.ReportMetric(slope, "s-per-fraction-slope")
	b.ReportMetric(r2, "fit-r2")
}

// benchConvergence runs one Figure 2-family sweep (16-AS clique,
// SDN 0..100%, 3 seeded runs/point, the paper-faithful MRAI 30s with
// jitter) through the declarative registry.
func benchConvergence(b *testing.B, name string) {
	b.Helper()
	sw := buildSweep(b, name, figures.Options{
		SDNCounts: []int{0, 4, 8, 12, 16},
		Runs:      3,
		BaseSeed:  1,
	})
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSweep(b, res)
		}
	}
}

// BenchmarkFig2Withdrawal regenerates Figure 2: withdrawal convergence
// on a 16-AS clique versus SDN deployment fraction.
func BenchmarkFig2Withdrawal(b *testing.B) { benchConvergence(b, "fig2") }

// BenchmarkAnnouncement regenerates the §4 announcement experiment.
func BenchmarkAnnouncement(b *testing.B) { benchConvergence(b, "announce") }

// BenchmarkFailover regenerates the §4 route fail-over experiment
// (dual-homed stub origin losing its primary attachment).
func BenchmarkFailover(b *testing.B) { benchConvergence(b, "failover") }

// BenchmarkMRAISweep is the ablation behind the withdrawal dynamics:
// pure-BGP Tdown scales with the advertisement interval.
func BenchmarkMRAISweep(b *testing.B) {
	sw := buildSweep(b, "mrai", figures.Options{Runs: 2, BaseSeed: 1})
	sw.Axis = lab.MRAIs(5*time.Second, 15*time.Second, 30*time.Second)
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Cells[0].Summary.Median, "s-mrai5")
			b.ReportMetric(res.Cells[len(res.Cells)-1].Summary.Median, "s-mrai30")
		}
	}
}

// BenchmarkCliqueSizeSweep: path exploration grows with mesh size.
func BenchmarkCliqueSizeSweep(b *testing.B) {
	sw := buildSweep(b, "size", figures.Options{Runs: 2, BaseSeed: 1})
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Cells[0].Summary.Median, "s-n4")
			b.ReportMetric(res.Cells[len(res.Cells)-1].Summary.Median, "s-n16")
		}
	}
}

// BenchmarkDebounceAblation measures the delayed-recomputation design
// insight: recomputation batches versus added convergence latency.
func BenchmarkDebounceAblation(b *testing.B) {
	sw := buildSweep(b, "debounce", figures.Options{Runs: 2, BaseSeed: 1, MRAI: 10 * time.Second})
	sw.Axis = lab.Debounces(-1, time.Second)
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Cells[0].MeanRecomputes(), "recomputes-nodebounce")
			b.ReportMetric(res.Cells[1].MeanRecomputes(), "recomputes-1s")
		}
	}
}

// BenchmarkPathExploration counts routing churn (Oliveira et al. [13])
// with and without the cluster.
func BenchmarkPathExploration(b *testing.B) {
	sw := buildSweep(b, "exploration", figures.Options{
		SDNCounts: []int{0, 6}, BaseSeed: 1, MRAI: 10 * time.Second,
	})
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Cells[0].MeanBestPathChanges(), "changes-pure")
			b.ReportMetric(res.Cells[1].MeanBestPathChanges(), "changes-sdn")
		}
	}
}

// BenchmarkWorkloadCascade regenerates the workload family's cascade
// figure at benchmark scale: a dual-homed stub's fail-over followed by
// a hijack of the weakened prefix on a seeded internet-like graph —
// the multi-event (per-epoch) datapoint in the BENCH trajectory.
func BenchmarkWorkloadCascade(b *testing.B) {
	topo := lab.TopoSpec{Kind: "internet", N: 16}
	sw := buildSweep(b, "cascade", figures.Options{Topo: &topo, SDNCounts: []int{0, 4}, Runs: 1, BaseSeed: 1})
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first, last := res.Cells[0], res.Cells[len(res.Cells)-1]
			b.ReportMetric(first.MeanHijacked(), "hijacked-pure")
			b.ReportMetric(last.MeanHijacked(), "hijacked-sdn")
			b.ReportMetric(first.Epochs[0].Summary.Median, "s-failover-epoch-pure")
			b.ReportMetric(last.Epochs[0].Summary.Median, "s-failover-epoch-sdn")
		}
	}
}

// BenchmarkSubCluster exercises the disjoint sub-cluster design goal.
func BenchmarkSubCluster(b *testing.B) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := figures.SubClusterExperiment(timers, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ReachableAfterSplit {
			b.Fatal("sub-clusters isolated")
		}
		if i == 0 {
			b.ReportMetric(res.ReconvergenceTime.Seconds(), "s-reconvergence")
		}
	}
}

// BenchmarkFlapStability compares the flap-containment mechanisms:
// plain BGP vs RFC 2439 damping vs the controller's debounce.
func BenchmarkFlapStability(b *testing.B) {
	sw := buildSweep(b, "flap", figures.Options{BaseSeed: 1, MRAI: 10 * time.Second})
	for i := 0; i < b.N; i++ {
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range res.Cells {
				b.ReportMetric(c.MeanUpdatesSent(), "updates-"+c.Label)
			}
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkWireMarshalUpdate(b *testing.B) {
	u := wire.Update{
		Attrs: wire.PathAttrs{
			Origin:  wire.OriginIGP,
			ASPath:  wire.NewASPath(1, 2, 3, 4, 5),
			NextHop: netip.MustParseAddr("100.64.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.1.0/24")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Marshal(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireUnmarshalUpdate(b *testing.B) {
	u := wire.Update{
		Attrs: wire.PathAttrs{
			Origin:  wire.OriginIGP,
			ASPath:  wire.NewASPath(1, 2, 3, 4, 5),
			NextHop: netip.MustParseAddr("100.64.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.1.0/24")},
	}
	frame, err := wire.Marshal(u)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRIBDecision(b *testing.B) {
	tbl := rib.NewTable()
	prefix := netip.MustParsePrefix("10.0.1.0/24")
	for i := 0; i < 16; i++ {
		tbl.SetAdjIn(&rib.Route{
			Prefix:  prefix,
			Peer:    rib.PeerKey(string(rune('a' + i))),
			PeerASN: idr.ASN(i + 2),
			PeerID:  idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(i + 2)})),
			Attrs: wire.PathAttrs{
				ASPath:  wire.NewASPath(idr.ASN(i+2), 1),
				NextHop: netip.AddrFrom4([4]byte{100, 64, 0, byte(i + 2)}),
			},
		})
	}
	update := &rib.Route{
		Prefix: prefix, Peer: "z", PeerASN: 99,
		PeerID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.99")),
		Attrs:  wire.PathAttrs{ASPath: wire.NewASPath(99, 1), NextHop: netip.MustParseAddr("100.64.0.99")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.SetAdjIn(update)
	}
}

// BenchmarkRIBDecisionSharded is BenchmarkRIBDecision's counterpart
// under concurrent-grade table pressure: churn spread over 64 prefixes
// across 8 shards, so the per-shard candidate index, the prefix-hash
// router and the shard locks all sit on the measured path.
func BenchmarkRIBDecisionSharded(b *testing.B) {
	tbl := rib.NewTableShards(8)
	prefixes := make([]netip.Prefix, 64)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
		for j := 0; j < 4; j++ {
			tbl.SetAdjIn(&rib.Route{
				Prefix:  prefixes[i],
				Peer:    rib.PeerKey(string(rune('a' + j))),
				PeerASN: idr.ASN(j + 2),
				PeerID:  idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(j + 2)})),
				Attrs: wire.PathAttrs{
					ASPath:  wire.NewASPath(idr.ASN(j+2), 1),
					NextHop: netip.AddrFrom4([4]byte{100, 64, 0, byte(j + 2)}),
				},
			})
		}
	}
	updates := make([]*rib.Route, len(prefixes))
	for i, prefix := range prefixes {
		updates[i] = &rib.Route{
			Prefix: prefix, Peer: "z", PeerASN: 99,
			PeerID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.99")),
			Attrs:  wire.PathAttrs{ASPath: wire.NewASPath(99, 1), NextHop: netip.MustParseAddr("100.64.0.99")},
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.SetAdjIn(updates[i%len(updates)])
	}
}

// BenchmarkRIBLookup measures longest-prefix match on a populated
// Loc-RIB — the data-plane forwarding decision behind every probe and
// reachability check. The by-length bucket index makes it O(#distinct
// prefix lengths) instead of O(|Loc-RIB|).
func BenchmarkRIBLookup(b *testing.B) {
	tbl := rib.NewTable()
	for i := 0; i < 256; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
		tbl.SetAdjIn(&rib.Route{
			Prefix:  prefix,
			Peer:    "a",
			PeerASN: 2,
			PeerID:  idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.2")),
			Attrs: wire.PathAttrs{
				ASPath:  wire.NewASPath(2, 1),
				NextHop: netip.MustParseAddr("100.64.0.2"),
			},
		})
	}
	// A handful of more-specifics so multiple length buckets exist.
	for i := 0; i < 16; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 7, 0}), 24)
		tbl.SetAdjIn(&rib.Route{
			Prefix:  prefix,
			Peer:    "b",
			PeerASN: 3,
			PeerID:  idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.3")),
			Attrs: wire.PathAttrs{
				ASPath:  wire.NewASPath(3, 1),
				NextHop: netip.MustParseAddr("100.64.0.3"),
			},
		})
	}
	addr := netip.MustParseAddr("10.128.7.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(addr); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkTimerReset measures heap-resident timer churn: a sub-second
// timer repeatedly rescheduled before firing, the delay class (message
// deliveries, processing delays) that stays in the binary heap now
// that second-scale deadlines file into the wheel (BenchmarkTimerWheel
// measures those). Reset re-keys the pending event in place via
// heap.Fix instead of allocating a replacement; the allocs/op recorded
// at -benchtime=1x are entirely kernel + counting-RNG setup.
func BenchmarkTimerReset(b *testing.B) {
	k := sim.NewKernel(1)
	timer := k.AfterFunc(100*time.Millisecond, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		timer.Reset(100 * time.Millisecond)
	}
}

// BenchmarkTimerWheel measures the long-delay arm the wheel absorbs:
// hold-timer-style churn (seconds-scale deadlines, re-armed long before
// firing) that the heap used to sift on every reset. The wheel re-keys
// the resident entry in its slot.
func BenchmarkTimerWheel(b *testing.B) {
	k := sim.NewKernel(1)
	timer := k.AfterFunc(90*time.Second, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		timer.Reset(90 * time.Second)
	}
}

// BenchmarkKernelBatchDrain measures the batched event drain: many
// same-timestamp events (a converged mesh's synchronized timer
// population) popped once per instant instead of once per event.
func BenchmarkKernelBatchDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := sim.NewKernel(1)
		for j := 0; j < 1024; j++ {
			k.AfterFunc(time.Millisecond, func() {})
		}
		b.StartTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	tbl := sdn.NewFlowTable()
	for i := 0; i < 256; i++ {
		tbl.Upsert(sdn.FlowEntry{
			Match:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			OutPort: uint32(i),
		})
	}
	addr := netip.MustParseAddr("10.128.7.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(addr); !ok {
			b.Fatal("lookup miss")
		}
	}
}

func BenchmarkOFPFlowModRoundTrip(b *testing.B) {
	fm := ofp.FlowMod{
		Command: ofp.FlowAdd, Priority: 100,
		Match: netip.MustParsePrefix("10.0.1.0/24"), OutPort: 3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := ofp.Marshal(fm, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ofp.Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// snapshotBenchTrial is the checkpointing workload: a seeded
// 1000-AS internet-like graph at origin-only warm-up scale (the
// figures registry enables OriginOnly at ≥128 ASes) with the
// half-cluster placement the lossy figure uses (K = n/2), withdrawal
// event. Warm-up — session establishment, controller bootstrap and
// announcement convergence — dominates the run here, which is exactly
// what the snapshot cache amortizes.
func snapshotBenchTrial() lab.Trial {
	return lab.Trial{
		Topo:       lab.TopoSpec{Kind: "internet", N: 1000},
		Placement:  lab.Placement{Strategy: lab.PlaceLast, K: 500},
		Event:      lab.Withdrawal,
		Debounce:   100 * time.Millisecond,
		OriginOnly: true,
		Seed:       1,
	}
}

// BenchmarkWarmupCold measures the cold path the snapshot cache
// replaces: establish every session and converge the initial
// announcement on `internet 1000`, then encode the converged state.
func BenchmarkWarmupCold(b *testing.B) {
	trial := snapshotBenchTrial()
	var size int
	for i := 0; i < b.N; i++ {
		raw, err := trial.WarmupSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		size = len(raw)
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
}

// BenchmarkSnapshotFork measures the warm path: rebuild the same
// warmed-up experiment from the encoded snapshot, forking it under a
// fresh run seed. The ratio to BenchmarkWarmupCold is the speedup a
// snapshot-cache hit buys per (run, seed).
func BenchmarkSnapshotFork(b *testing.B) {
	trial := snapshotBenchTrial()
	raw, err := trial.WarmupSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fork := trial
		fork.Seed = int64(i + 1)
		if _, err := fork.RestoreWarmup(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRun measures one full 16-clique withdrawal emulation
// (establishment, announcement convergence, withdrawal convergence) —
// the unit of work behind every figure point.
func BenchmarkSingleRun(b *testing.B) {
	trial := lab.Trial{
		Topo:            lab.TopoSpec{Kind: "clique", N: 16},
		Placement:       lab.Placement{Strategy: lab.PlaceLast, K: 8},
		Event:           lab.Withdrawal,
		Debounce:        100 * time.Millisecond,
		ProcessingDelay: 25 * time.Millisecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trial.Seed = int64(i)
		if _, err := trial.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
