// Command bgpsdnlab runs a hybrid BGP-SDN emulation scenario script:
// the framework's experiment-lifecycle front end (see package
// scenario for the script language).
//
// Usage:
//
//	bgpsdnlab -f scenario.lab
//	bgpsdnlab < scenario.lab
//	bgpsdnlab -f examples/scenarios/hybrid-tour.lab
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

// usage prints the full help text: what the command does, every flag
// with its default, and runnable examples against the shipped
// scenarios (mirrored in README.md).
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `bgpsdnlab runs a hybrid BGP-SDN emulation scenario script (.lab file):
configuration directives (topology, sdn, policy, timers), then
lifecycle commands (announce, withdraw, fail, migrate, scheduled
"at ..." workloads, converge, print). See internal/scenario for the
script language and examples/scenarios/ for complete scripts.

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), `
Examples:
  bgpsdnlab -f examples/scenarios/hybrid-tour.lab          # scripted tour of the paper's experiment
  bgpsdnlab -f examples/scenarios/fig2-point.lab           # one Figure 2 measurement point
  bgpsdnlab -f examples/scenarios/maintenance-window.lab   # scheduled multi-event workload
  bgpsdnlab < examples/scenarios/fig2-point.lab            # same, reading the script from stdin
`)
}

func main() {
	flag.Usage = usage
	file := flag.String("f", "", "scenario script file to run (default: read the script from stdin)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "bgpsdnlab: unexpected arguments %q (scripts are passed with -f or on stdin)\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		//lint:errcheck file opened read-only; Close cannot lose buffered writes
		defer f.Close()
		in = f
	}
	script, err := scenario.Parse(in)
	if err != nil {
		fatal(err)
	}
	runner := scenario.NewRunner(os.Stdout)
	if err := runner.Run(script); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgpsdnlab:", err)
	os.Exit(1)
}
