// Command bgpsdnlab runs a hybrid BGP-SDN emulation scenario script:
// the framework's experiment-lifecycle front end (see package
// scenario for the script language).
//
// Usage:
//
//	bgpsdnlab -f scenario.lab
//	bgpsdnlab < scenario.lab
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

func main() {
	file := flag.String("f", "", "scenario script (default: stdin)")
	flag.Parse()

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	script, err := scenario.Parse(in)
	if err != nil {
		fatal(err)
	}
	runner := scenario.NewRunner(os.Stdout)
	if err := runner.Run(script); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgpsdnlab:", err)
	os.Exit(1)
}
