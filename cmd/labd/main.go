// Command labd is the lab-as-a-service daemon: a resident process
// that accepts canonical sweep specs over HTTP/JSON, schedules them
// on a shared runner with per-client fair queueing, and streams
// per-run telemetry over Server-Sent Events. The daemon adds no
// semantics of its own — every job runs through the same artifact
// store path as `convergence -out`, so a sweep submitted here yields
// the byte-identical sealed manifest and encoder outputs, identical
// concurrent submissions coalesce into one execution, and a spec the
// store has already sealed returns its results with zero emulation.
//
// Usage:
//
//	labd -store results/                       # listen on :8080 over this
//	                                           # artifact store
//	labd -store results/ -addr 127.0.0.1:9999  # explicit listen address
//	labd -store results/ -jobs 2 -parallel 4   # run 2 jobs concurrently,
//	                                           # 4 emulation runs each
//	labd -store results/ -snapshot-cache       # checkpoint warm-ups under
//	                                           # <store>/snapshots/ and
//	                                           # fork them across jobs
//
// The API (see internal/labd for the wire types):
//
//	GET  /v1/healthz             liveness
//	GET  /v1/status              workers, queue depths, job-state counts
//	GET  /v1/presets             the experiment registry as named presets
//	POST /v1/jobs                submit {"client","name","spec":{...}} or
//	                             {"client","preset":"fig2","options":{...}}
//	GET  /v1/jobs                all jobs, submission order
//	GET  /v1/jobs/{id}           one job (id = spec hash or ≥8-digit prefix)
//	GET  /v1/jobs/{id}/spec      the canonical spec bytes
//	GET  /v1/jobs/{id}/result    ?format=table|csv|json|markdown
//	GET  /v1/jobs/{id}/manifest  the sealed manifest from the store
//	GET  /v1/jobs/{id}/events    SSE event log (?from=<seq> resumes)
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight runs (their records flush to the store and a partial
// manifest is sealed), marks unfinished jobs interrupted and exits 0;
// resubmitting the same spec to a fresh daemon over the same store
// resumes from the stored records. A second signal force-quits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/labd"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	storeDir := flag.String("store", "", "artifact store directory (required): jobs are content-addressed by spec hash, completed runs are cached and interrupted jobs resume from their stored records")
	snapCache := flag.Bool("snapshot-cache", false, "checkpoint each distinct warm-up once under <store>/snapshots/ and restore/fork it for every (cell, run) sharing it, across jobs and daemon restarts")
	jobs := flag.Int("jobs", 1, "jobs executed concurrently (each job is one sweep; clients are served round-robin)")
	parallel := flag.Int("parallel", 1, "concurrent emulation runs within one job (results are identical at any setting)")
	flag.Parse()

	if *storeDir == "" {
		fatal(fmt.Errorf("-store is required (the daemon is stateless apart from its artifact store)"))
	}
	store, err := artifact.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	cfg := labd.Config{Store: store, Workers: *jobs, Parallelism: *parallel}
	if *snapCache {
		snaps, err := store.Snapshots()
		if err != nil {
			fatal(err)
		}
		cfg.Snapshots = snaps
	}
	srv, err := labd.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv.Start()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "labd: listening on %s, store %s, %d job worker(s) × %d-way runs\n",
		*addr, *storeDir, *jobs, *parallel)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err)
	case <-sigc:
	}
	fmt.Fprintln(os.Stderr, "labd: interrupt — draining in-flight runs (interrupt again to force quit)")
	go func() {
		<-sigc
		os.Exit(130)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	//lint:errcheck shutdown is best-effort; the drain below is what preserves work
	hs.Shutdown(ctx)
	srv.Drain()
	fmt.Fprintln(os.Stderr, "labd: drained; unfinished jobs are resumable from the store")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labd:", err)
	os.Exit(1)
}
