// Command topogen generates AS-level topologies in the framework's
// supported dataset formats: CAIDA AS relationships, iPlane inter-PoP
// links, and Graphviz DOT.
//
// Usage:
//
//	topogen -kind clique -n 16 -format dot
//	topogen -kind internet -n 200 -seed 7 -format caida > as-rel.txt
//	topogen -kind internet -n 50 -format iplane -pops 3 > pops.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/topology"
)

// usage prints the full help text: what the command does, every flag
// with its default, and runnable examples (mirrored in README.md).
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `topogen generates an AS-level topology (with CAIDA-style business
relationships) and writes it in one of the framework's dataset
formats: Graphviz DOT for inspection, CAIDA AS-relationships for the
topology readers, or synthesized iPlane inter-PoP links. The random
generators (er, ba, internet) are seeded and deterministic: the same
-seed always emits the same graph.

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), `
Examples:
  topogen -kind clique -n 16 -format dot                   # the paper's Figure 2 mesh, DOT
  topogen -kind tree -n 15 -fanout 2 -labels               # provider hierarchy with P2C/P2P edge labels
  topogen -kind grid -n 4 -height 4 -format dot            # 4x4 peer lattice
  topogen -kind internet -n 200 -seed 7 -format caida > as-rel.txt   # CAIDA-format internet-like graph
  topogen -kind er -n 32 -p 0.2 -seed 3 -format dot        # seeded Erdős–Rényi peer graph
  topogen -kind ba -n 64 -m 2 -format dot                  # Barabási–Albert preferential attachment
  topogen -kind internet -n 50 -format iplane -pops 3 > pops.txt     # synthesized iPlane PoP links
`)
}

func main() {
	flag.Usage = usage
	kind := flag.String("kind", "clique", "topology generator: clique|line|ring|star|tree|grid|er|ba|internet")
	n := flag.Int("n", 16, "number of ASes (for -kind grid: the grid width)")
	h := flag.Int("height", 4, "grid height (grid only; was -h, which now prints this help)")
	fanout := flag.Int("fanout", 2, "tree fanout (tree only)")
	p := flag.Float64("p", 0.3, "edge probability (er only)")
	m := flag.Int("m", 2, "attachment count per new AS (ba only)")
	seed := flag.Int64("seed", 1, "seed for the random generators (er, ba, internet); same seed, same graph")
	format := flag.String("format", "dot", "output format: dot (Graphviz), caida (AS relationships), iplane (inter-PoP links)")
	pops := flag.Int("pops", 3, "max PoPs synthesized per AS (-format iplane only)")
	labels := flag.Bool("labels", false, "annotate DOT edges with their business relationship (p2p/p2c)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "topogen: unexpected arguments %q\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := generate(*kind, *n, *h, *fanout, *p, *m, rng)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "dot":
		err = topology.WriteDOT(os.Stdout, g, topology.DOTOptions{EdgeLabels: *labels})
	case "caida":
		err = topology.WriteCAIDA(os.Stdout, g)
	case "iplane":
		var links []topology.PoPLink
		links, err = topology.SynthesizeIPlane(g, *pops, rng)
		if err == nil {
			err = topology.WriteIPlane(os.Stdout, links)
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func generate(kind string, n, h, fanout int, p float64, m int, rng *rand.Rand) (*topology.Graph, error) {
	switch kind {
	case "clique":
		return topology.Clique(n)
	case "line":
		return topology.Line(n)
	case "ring":
		return topology.Ring(n)
	case "star":
		return topology.Star(n)
	case "tree":
		return topology.Tree(n, fanout)
	case "grid":
		return topology.Grid(n, h)
	case "er":
		return topology.ErdosRenyi(n, p, rng)
	case "ba":
		return topology.BarabasiAlbert(n, m, rng)
	case "internet":
		return topology.SynthesizeInternetLike(topology.InternetLikeConfig{ASes: n}, rng)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
