// Command topogen generates AS-level topologies in the framework's
// supported dataset formats: CAIDA AS relationships, iPlane inter-PoP
// links, and Graphviz DOT.
//
// Usage:
//
//	topogen -kind clique -n 16 -format dot
//	topogen -kind internet -n 200 -seed 7 -format caida > as-rel.txt
//	topogen -kind internet -n 50 -format iplane -pops 3 > pops.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/topology"
)

func main() {
	kind := flag.String("kind", "clique", "clique|line|ring|star|tree|grid|er|ba|internet")
	n := flag.Int("n", 16, "number of ASes (for grid: width)")
	h := flag.Int("h", 4, "grid height")
	fanout := flag.Int("fanout", 2, "tree fanout")
	p := flag.Float64("p", 0.3, "Erdős–Rényi edge probability")
	m := flag.Int("m", 2, "Barabási–Albert attachment count")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "dot", "dot|caida|iplane")
	pops := flag.Int("pops", 3, "max PoPs per AS (iplane format)")
	labels := flag.Bool("labels", false, "relationship labels in DOT output")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := generate(*kind, *n, *h, *fanout, *p, *m, rng)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "dot":
		err = topology.WriteDOT(os.Stdout, g, topology.DOTOptions{EdgeLabels: *labels})
	case "caida":
		err = topology.WriteCAIDA(os.Stdout, g)
	case "iplane":
		var links []topology.PoPLink
		links, err = topology.SynthesizeIPlane(g, *pops, rng)
		if err == nil {
			err = topology.WriteIPlane(os.Stdout, links)
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func generate(kind string, n, h, fanout int, p float64, m int, rng *rand.Rand) (*topology.Graph, error) {
	switch kind {
	case "clique":
		return topology.Clique(n)
	case "line":
		return topology.Line(n)
	case "ring":
		return topology.Ring(n)
	case "star":
		return topology.Star(n)
	case "tree":
		return topology.Tree(n, fanout)
	case "grid":
		return topology.Grid(n, h)
	case "er":
		return topology.ErdosRenyi(n, p, rng)
	case "ba":
		return topology.BarabasiAlbert(n, m, rng)
	case "internet":
		return topology.SynthesizeInternetLike(topology.InternetLikeConfig{ASes: n}, rng)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
