package main

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestGenerateAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []string{"clique", "line", "ring", "star", "tree", "grid", "er", "ba", "internet"}
	for _, kind := range kinds {
		g, err := generate(kind, 12, 3, 2, 0.5, 2, rng)
		if err != nil {
			t.Fatalf("generate(%s): %v", kind, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("generate(%s): empty graph", kind)
		}
		if !g.Connected() {
			t.Fatalf("generate(%s): disconnected", kind)
		}
	}
	if _, err := generate("mobius", 10, 1, 1, 0.5, 2, rng); err == nil {
		t.Fatal("unknown kind should error")
	}
}

// dot renders a generated topology exactly as the -format dot path
// does.
func dot(t *testing.T, kind string, n, h, fanout int, p float64, m int, seed int64, labels bool) string {
	t.Helper()
	g, err := generate(kind, n, h, fanout, p, m, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := topology.WriteDOT(&sb, g, topology.DOTOptions{EdgeLabels: labels}); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestDOTGolden pins the DOT rendering byte for byte — provider
// hierarchies as directed p2c edges (with and without relationship
// labels) and seeded random peer graphs as undirected edges — so the
// workload figures can rely on stable topology rendering.
func TestDOTGolden(t *testing.T) {
	if got, want := dot(t, "tree", 7, 4, 2, 0.3, 2, 1, false), `digraph "astopo" {
  node [shape=circle];
  "AS1";
  "AS2";
  "AS3";
  "AS4";
  "AS5";
  "AS6";
  "AS7";
  "AS1" -> "AS2";
  "AS1" -> "AS3";
  "AS2" -> "AS4";
  "AS2" -> "AS5";
  "AS3" -> "AS6";
  "AS3" -> "AS7";
}
`; got != want {
		t.Fatalf("tree DOT golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if got, want := dot(t, "tree", 7, 4, 2, 0.3, 2, 1, true), `digraph "astopo" {
  node [shape=circle];
  "AS1";
  "AS2";
  "AS3";
  "AS4";
  "AS5";
  "AS6";
  "AS7";
  "AS1" -> "AS2" [label="p2c"];
  "AS1" -> "AS3" [label="p2c"];
  "AS2" -> "AS4" [label="p2c"];
  "AS2" -> "AS5" [label="p2c"];
  "AS3" -> "AS6" [label="p2c"];
  "AS3" -> "AS7" [label="p2c"];
}
`; got != want {
		t.Fatalf("labeled tree DOT golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Seeded random generation must render identically across runs —
	// the determinism the golden really guards.
	if got, want := dot(t, "er", 6, 4, 2, 0.8, 2, 3, false), `digraph "astopo" {
  node [shape=circle];
  "AS1";
  "AS2";
  "AS3";
  "AS4";
  "AS5";
  "AS6";
  "AS1" -> "AS2" [dir=none];
  "AS1" -> "AS3" [dir=none];
  "AS1" -> "AS5" [dir=none];
  "AS2" -> "AS3" [dir=none];
  "AS2" -> "AS4" [dir=none];
  "AS2" -> "AS5" [dir=none];
  "AS2" -> "AS6" [dir=none];
  "AS3" -> "AS4" [dir=none];
  "AS3" -> "AS5" [dir=none];
  "AS3" -> "AS6" [dir=none];
  "AS4" -> "AS6" [dir=none];
}
`; got != want {
		t.Fatalf("er DOT golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
