package main

import (
	"math/rand"
	"testing"
)

func TestGenerateAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []string{"clique", "line", "ring", "star", "tree", "grid", "er", "ba", "internet"}
	for _, kind := range kinds {
		g, err := generate(kind, 12, 3, 2, 0.5, 2, rng)
		if err != nil {
			t.Fatalf("generate(%s): %v", kind, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("generate(%s): empty graph", kind)
		}
		if !g.Connected() {
			t.Fatalf("generate(%s): disconnected", kind)
		}
	}
	if _, err := generate("mobius", 10, 1, 1, 0.5, 2, rng); err == nil {
		t.Fatal("unknown kind should error")
	}
}
