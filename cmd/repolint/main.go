// Command repolint runs the repository's static-analysis suite
// (internal/lint): five analyzers mechanizing the invariants the
// reproduction's results rest on. It is zero-dependency (stdlib
// go/ast + go/types), runs as both this CLI and a tier-1 test
// (internal/lint.TestRepoLintClean), and exits non-zero on any
// finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// usage prints the full flag reference with the analyzer registry.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, `repolint — static analysis for the repo's determinism, cache and alloc invariants

Usage:

  repolint [flags] [dir]

dir is any directory inside the module (default "."); the whole
module above it is loaded and analyzed. Pass "./..." for familiarity
— the suite always covers every non-test package.

Analyzers (select with -only / -skip, comma-separated):

`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, `
Findings at genuinely-safe sites are suppressed in the source with an
annotation on the flagged line or the line above it, reason mandatory:

  //lint:<check> <reason>

where <check> is the key printed with each finding (maporder,
globalrand, walltime, canonical, escape, errcheck, doc).

Flags:

  -list
        print the analyzer names and exit
  -only string
        run only these analyzers (comma-separated names)
  -skip string
        skip these analyzers (comma-separated names)
  -bench
        additionally run the allocs/op benchmark gate: the
        alloc-sensitive benchmarks run once (-benchtime=1x) and any
        allocs/op above the committed baseline fails
  -bench-baseline string
        baseline document for -bench (default "BENCH_SMOKE.json" at
        the module root)
  -write-escape-baseline
        regenerate internal/lint/zeroalloc_baseline.json from the
        current compiler escape diagnostics and exit (commit the
        diff deliberately — it widens or tightens the zero-alloc
        contract)
  -v    verbose: print per-analyzer progress

Exit status: 0 clean, 1 findings, 2 usage or load error.

Examples:

  repolint ./...
  repolint -only determinism,errcheck
  repolint -bench -bench-baseline BENCH_SMOKE.json
  repolint -write-escape-baseline
`)
}

func main() {
	list := flag.Bool("list", false, "print the analyzer names and exit")
	only := flag.String("only", "", "run only these analyzers (comma-separated)")
	skip := flag.String("skip", "", "skip these analyzers (comma-separated)")
	bench := flag.Bool("bench", false, "run the allocs/op benchmark gate too")
	benchBaseline := flag.String("bench-baseline", "", "baseline document for -bench (default BENCH_SMOKE.json at the module root)")
	writeBaseline := flag.Bool("write-escape-baseline", false, "regenerate the zeroalloc escape baseline and exit")
	verbose := flag.Bool("v", false, "verbose: print per-analyzer progress")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" || dir == "."+string(os.PathSeparator) {
			dir = "."
		}
	}
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "repolint: at most one directory argument")
		os.Exit(2)
	}

	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "repolint: loaded %d packages from %s\n", len(prog.Packages), prog.Root)
	}

	if *writeBaseline {
		if err := lint.WriteEscapeBaseline(prog); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "repolint: wrote internal/lint/zeroalloc_baseline.json")
		return
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "repolint: running %s\n", a.Name)
		}
	}
	diags, err := lint.RunAnalyzers(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}

	if *bench {
		baseline := *benchBaseline
		if baseline == "" {
			baseline = prog.Root + "/BENCH_SMOKE.json"
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "repolint: running bench gate against %s\n", baseline)
		}
		bd, err := lint.BenchGate(prog.Root, baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		diags = append(diags, bd...)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d findings\n", len(diags))
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "repolint: clean")
	}
}

// selectAnalyzers applies -only and -skip to the registry.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(s string) (map[string]bool, error) {
		out := map[string]bool{}
		if s == "" {
			return out, nil
		}
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			out[name] = true
		}
		return out, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
