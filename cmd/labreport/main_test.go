package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/figures"
	"repro/internal/lab"
)

var update = flag.Bool("update", false, "rewrite the golden report skeleton")

// testJobs is a tiny two-figure profile: a 4-AS clique Figure 2 and a
// two-epoch maintenance window, one run per point — small enough for
// the test suite, yet covering tables, fits, epochs and epoch SVGs.
func testJobs() []job {
	return []job{
		{name: "fig2",
			opts: figures.Options{Topo: &lab.TopoSpec{Kind: "clique", N: 4}, SDNCounts: []int{0, 2, 4}, Runs: 1, BaseSeed: 1, MRAI: 5 * time.Second},
			note: "Test configuration: 4-AS clique, 1 run/point."},
		{name: "maint",
			opts: figures.Options{Topo: &lab.TopoSpec{Kind: "clique", N: 4}, SDNCounts: []int{0, 4}, Runs: 1, BaseSeed: 1, MRAI: 5 * time.Second},
			note: "Test configuration: 4-AS clique, 1 run/point."},
	}
}

// TestReportGolden pins the generated report skeleton byte for byte:
// headings, metadata lines, tables, fit lines and image references.
// The engine is deterministic, so the full file is stable; a diff
// here means the report format (or the simulation semantics) changed
// — update with `go test ./cmd/labreport -run TestReportGolden -update`.
func TestReportGolden(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	if err := generate(dir, "test", testJobs(), 1, false, &log); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_skeleton.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("REPORT.md skeleton changed (rerun with -update if intended):\n--- got ---\n%s", got)
	}
}

// TestReportRegeneratesByteIdentical is the acceptance check at test
// scale: generating twice into the same directory serves every cell
// from the store the second time and rewrites byte-identical
// REPORT.md, manifest.json and SVGs.
func TestReportRegeneratesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var first bytes.Buffer
	if err := generate(dir, "test", testJobs(), 1, false, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "0 cached (0% cache hits)") {
		t.Fatalf("first run should execute everything:\n%s", first.String())
	}
	read := func() map[string][]byte {
		out := map[string][]byte{}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, _ := filepath.Rel(dir, path)
			if rel == "REPORT.md" || rel == "manifest.json" || strings.HasSuffix(rel, ".svg") {
				out[rel], err = os.ReadFile(path)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	before := read()
	if len(before) < 5 {
		t.Fatalf("expected REPORT.md + manifest.json + >=3 SVGs, got %d files", len(before))
	}

	var second bytes.Buffer
	if err := generate(dir, "test", testJobs(), 1, false, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "(100% cache hits)") {
		t.Fatalf("second run should be fully cached:\n%s", second.String())
	}
	if strings.Contains(second.String(), "executed\n") {
		for _, line := range strings.Split(second.String(), "\n") {
			if strings.Contains(line, "executed") && !strings.Contains(line, "0 executed") {
				t.Fatalf("second run executed emulations: %s", line)
			}
		}
	}
	after := read()
	for name, data := range before {
		if !bytes.Equal(data, after[name]) {
			t.Errorf("%s is not byte-identical across regenerations", name)
		}
	}

	if err := checkReport(dir); err != nil {
		t.Fatalf("generated report does not validate: %v", err)
	}
}

// TestReportSnapshotCacheByteIdentical pins -snapshot-cache at report
// scale: the same profile with the warm-up cache on is byte-identical
// to the plain run (REPORT.md, manifest.json and every SVG), the cold
// pass stores snapshots, and a rerun over the fresh store restores
// warm-ups from them.
func TestReportSnapshotCacheByteIdentical(t *testing.T) {
	read := func(dir string) map[string][]byte {
		out := map[string][]byte{}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, _ := filepath.Rel(dir, path)
			if rel == "REPORT.md" || rel == "manifest.json" || strings.HasSuffix(rel, ".svg") {
				out[rel], err = os.ReadFile(path)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plainDir := t.TempDir()
	if err := generate(plainDir, "test", testJobs(), 1, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	var cold bytes.Buffer
	if err := generate(snapDir, "test", testJobs(), 1, true, &cold); err != nil {
		t.Fatal(err)
	}
	// 5 runs, but only 3 distinct warm-ups: maint's sdn-0 and sdn-4
	// cells share fig2's converged states — the cache is cross-figure.
	if !strings.Contains(cold.String(), "snapshots: 2 warm-up hits, 3 cold, 3 stored") {
		t.Fatalf("cold run should warm up 3 states and share 2 across figures:\n%s", cold.String())
	}
	want := read(plainDir)
	got := read(snapDir)
	for name, data := range want {
		if !bytes.Equal(data, got[name]) {
			t.Errorf("%s differs with the snapshot cache on", name)
		}
	}

	// A fresh store (no cached cells) over the now-warm snapshot cache
	// must restore every warm-up and still reproduce the report.
	rerunDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(rerunDir, "store"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.CopyFS(filepath.Join(rerunDir, "store", "snapshots"), os.DirFS(filepath.Join(snapDir, "store", "snapshots"))); err != nil {
		t.Fatal(err)
	}
	var warm bytes.Buffer
	if err := generate(rerunDir, "test", testJobs(), 1, true, &warm); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(warm.String(), "snapshots: 0 warm-up hits") {
		t.Fatalf("rerun over a warm snapshot cache restored nothing:\n%s", warm.String())
	}
	rerun := read(rerunDir)
	for name, data := range want {
		if !bytes.Equal(data, rerun[name]) {
			t.Errorf("%s differs when regenerated from warm snapshots", name)
		}
	}
}

// TestCheckDetectsTampering asserts -check fails once a stored record
// is altered after the fact.
func TestCheckDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	if err := generate(dir, "test", testJobs()[:1], 1, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := checkReport(dir); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")
	specs, err := os.ReadDir(store)
	if err != nil {
		t.Fatal(err)
	}
	rec := filepath.Join(store, specs[0].Name(), "c0-r0.json")
	data, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(rec, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkReport(dir); err == nil {
		t.Fatal("checkReport passed a tampered store")
	}
}

// TestExperimentsMDInSync asserts the generated registry block in
// EXPERIMENTS.md matches what `labreport -experiments-md` emits right
// now — the in-repo version of the CI drift check. Regenerate with:
// go run ./cmd/labreport -experiments-md, then splice between the
// markers.
func TestExperimentsMDInSync(t *testing.T) {
	var gen bytes.Buffer
	if err := writeExperimentsMD(&gen); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	begin := strings.Index(s, experimentsMDBegin)
	end := strings.Index(s, experimentsMDEnd)
	if begin < 0 || end < 0 {
		t.Fatalf("EXPERIMENTS.md is missing the generated registry block markers")
	}
	block := s[begin : end+len(experimentsMDEnd)]
	if block+"\n" != gen.String() {
		t.Fatalf("EXPERIMENTS.md registry block drifted from the registry; regenerate with `go run ./cmd/labreport -experiments-md`:\n--- generated ---\n%s\n--- in doc ---\n%s", gen.String(), block)
	}
}

// TestProfilesResolve asserts every shipped profile builds against the
// registry (catching a renamed experiment or an override a spec
// rejects before CI runs the sweeps).
func TestProfilesResolve(t *testing.T) {
	for name, jobs := range profiles {
		for _, j := range jobs {
			spec, ok := figures.Lookup(j.name)
			if !ok {
				t.Errorf("profile %s references unknown experiment %q", name, j.name)
				continue
			}
			if _, err := spec.Build(j.opts); err != nil {
				t.Errorf("profile %s: %s does not build: %v", name, j.name, err)
			}
		}
	}
}

// TestManifestValidatesAgainstSchema regenerates the tiny profile and
// checks the emitted manifest against the shipped schema validator.
func TestManifestValidatesAgainstSchema(t *testing.T) {
	dir := t.TempDir()
	if err := generate(dir, "test", testJobs()[:1], 1, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := artifact.ValidateReportManifest(data); err != nil {
		t.Fatal(err)
	}
}
