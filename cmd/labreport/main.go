// Command labreport regenerates the repository's evaluation as a
// single self-documenting artifact: it walks the internal/figures
// registry, runs (or cache-loads) every figure through the
// content-addressed artifact store, and emits REPORT.md with one
// section per figure (the registry's own names, titles and
// descriptions become the documentation), one SVG boxplot per figure
// (plus per-epoch boxplots for multi-event workloads), and a sealed,
// machine-readable manifest.json.
//
// The output is deterministic: no timestamps, no host information —
// running the same profile twice into the same -out directory
// performs zero emulations the second time (every cell is served from
// the store) and rewrites byte-identical REPORT.md, manifest.json and
// SVGs. An interrupted run resumes from the records already on disk.
//
// Usage:
//
//	labreport -out report                 # full profile: every registry figure
//	labreport -out report -profile smoke  # small CI profile (grid + internet-40)
//	labreport -out report -parallel 4     # bound concurrent emulation runs
//	labreport -check report               # validate manifest + store seals
//	labreport -experiments-md             # print the generated EXPERIMENTS.md
//	                                      # registry block and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/figures"
	"repro/internal/lab"
	"repro/internal/plot"
)

func main() {
	out := flag.String("out", "report", "output directory: REPORT.md, manifest.json, figures/*.svg and the store/ artifact cache")
	profile := flag.String("profile", "full", "figure profile: full (every registry figure) or smoke (grid + internet-40 subset for CI)")
	parallel := flag.Int("parallel", 0, "concurrent emulation runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	snapCache := flag.Bool("snapshot-cache", false, "checkpoint each distinct warm-up once under <out>/store/snapshots/ and restore/fork it for every run sharing it — results are byte-identical with or without the cache")
	expMD := flag.Bool("experiments-md", false, "print the generated EXPERIMENTS.md registry block to stdout and exit")
	check := flag.String("check", "", "validate an existing report directory (manifest schema, seal, store digests, emitted files) and exit")
	flag.Parse()

	if *expMD {
		if err := writeExperimentsMD(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *check != "" {
		if err := checkReport(*check); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: manifest and store verify\n", *check)
		return
	}
	jobs, ok := profiles[*profile]
	if !ok {
		names := make([]string, 0, len(profiles))
		for n := range profiles {
			names = append(names, n)
		}
		sort.Strings(names)
		fatal(fmt.Errorf("unknown profile %q (have %s)", *profile, strings.Join(names, ", ")))
	}
	if err := generate(*out, *profile, jobs, *parallel, *snapCache, os.Stdout); err != nil {
		fatal(err)
	}
}

// job is one figure of a report profile: a registry name, the options
// that resolve it, and an optional configuration note for the report.
type job struct {
	name string
	opts figures.Options
	note string
}

// pinOptions is the EXPERIMENTS.md scientific-pin configuration for
// the Figure 2 family: five axis points, three runs per point, seed 1
// — the exact sweep TestFig2PaperConfigEquivalence pins to
// s-pure-median 350.284, slope -369.785 and r² 0.989.
func pinOptions() figures.Options {
	return figures.Options{SDNCounts: []int{0, 4, 8, 12, 16}, Runs: 3, BaseSeed: 1}
}

const pinNote = "Configuration: the EXPERIMENTS.md scientific-pin setup " +
	"(axis 0,4,8,12,16; 3 runs/point; seed 1), so the report reproduces the pinned metrics exactly."

// profiles names the report profiles. Every job must resolve and run
// with no interactive input; order is presentation order.
var profiles = map[string][]job{
	"full": {
		{name: "fig2", opts: pinOptions(), note: pinNote},
		{name: "announce", opts: pinOptions(), note: pinNote},
		{name: "failover", opts: pinOptions(), note: pinNote},
		{name: "vf", opts: figures.Options{BaseSeed: 1}},
		{name: "policyload", opts: figures.Options{BaseSeed: 1}},
		{name: "hijack", opts: figures.Options{BaseSeed: 1}},
		{name: "maint", opts: figures.Options{BaseSeed: 1}},
		{name: "cascade", opts: figures.Options{BaseSeed: 1}},
		{name: "churn", opts: figures.Options{BaseSeed: 1}},
		{name: "mrai", opts: figures.Options{BaseSeed: 1}},
		{name: "size", opts: figures.Options{BaseSeed: 1}},
		{name: "debounce", opts: figures.Options{BaseSeed: 1}},
		{name: "exploration", opts: figures.Options{BaseSeed: 1}},
		{name: "flap", opts: figures.Options{BaseSeed: 1}},
	},
	"smoke": {
		{name: "fig2",
			opts: figures.Options{Topo: &lab.TopoSpec{Kind: "grid", N: 3, M: 3}, Runs: 1, BaseSeed: 1, MRAI: 5 * time.Second},
			note: "Smoke configuration: 3×3 grid, 1 run/point, 5s MRAI — the CI-sized stand-in for the 16-AS clique."},
		{name: "vf",
			opts: figures.Options{Topo: &lab.TopoSpec{Kind: "internet", N: 40}, Runs: 1, BaseSeed: 1},
			note: "Smoke configuration: 40-AS internet-like graph, 1 run/point."},
		{name: "hijack",
			opts: figures.Options{Topo: &lab.TopoSpec{Kind: "internet", N: 40}, Runs: 1, BaseSeed: 1},
			note: "Smoke configuration: 40-AS internet-like graph, 1 run/point."},
	},
}

// generate runs (or cache-loads) every job of the profile and writes
// REPORT.md, manifest.json and the SVGs into out. log receives one
// progress line per figure plus the cache summary. With snapCache the
// store's shared warm-up snapshot cache accelerates every figure —
// two figures over the same warmed-up network converge it once.
func generate(out, profileName string, jobs []job, parallel int, snapCache bool, log io.Writer) error {
	store, err := artifact.Open(filepath.Join(out, "store"))
	if err != nil {
		return err
	}
	var snaps *artifact.SnapshotStore
	if snapCache {
		if snaps, err = store.Snapshots(); err != nil {
			return err
		}
	}
	figDir := filepath.Join(out, "figures")
	if err := os.MkdirAll(figDir, 0o755); err != nil {
		return err
	}

	var body strings.Builder
	manifest := &artifact.ReportManifest{
		Version:   1,
		Generator: "labreport",
		Profile:   profileName,
	}
	totalCells, totalHits := 0, 0
	var toc strings.Builder
	for _, j := range jobs {
		spec, ok := figures.Lookup(j.name)
		if !ok {
			return fmt.Errorf("labreport: unknown experiment %q", j.name)
		}
		opts := j.opts
		opts.Parallelism = parallel
		sweep, err := spec.Build(opts)
		if err != nil {
			return fmt.Errorf("labreport: %s: %w", j.name, err)
		}
		if snaps != nil {
			sweep.Snapshots = snaps
		}
		res, stats, err := artifact.RunSweep(store, sweep)
		if err != nil {
			return fmt.Errorf("labreport: %s: %w", j.name, err)
		}
		totalCells += stats.Total
		totalHits += stats.Hits
		fmt.Fprintf(log, "%-12s spec %.12s  %d/%d runs cached, %d executed\n",
			j.name, stats.SpecHash, stats.Hits, stats.Total, stats.Executed)

		svgs, err := writeFigureSVGs(figDir, j.name, stats.SpecHash, res)
		if err != nil {
			return err
		}
		fmt.Fprintf(&toc, "- [`%s`](#%s) — %s\n", j.name, j.name, spec.Title)
		if err := writeSection(&body, spec, j.note, stats, res, svgs); err != nil {
			return err
		}
		manifest.Figures = append(manifest.Figures, manifestFigure(spec, stats, res, svgs))
	}

	var report strings.Builder
	report.WriteString("# Lab report — hybrid BGP/SDN evaluation\n\n")
	fmt.Fprintf(&report, "Profile `%s`: %d figures regenerated from the `internal/figures` registry by `labreport`.\n",
		profileName, len(jobs))
	report.WriteString(`This file, the SVGs under ` + "`figures/`" + ` and ` + "`manifest.json`" + ` are generated —
edit the registry, not the report. Every cell is archived in the
content-addressed store next to it (` + "`store/<spec-sha256>/`" + `: the
canonical spec, one sealed record per seeded run, a sealed manifest),
so every number here is traceable to a re-runnable configuration and
rerunning the same command reproduces this file byte for byte with
zero emulations.

Source paper: Gämperli, Kotronis & Dimitropoulos, *An Open-Source
Emulation Framework for Evaluating Hybrid BGP/SDN Internet Routing*
(SIGCOMM'14 demo). See EXPERIMENTS.md for the benchmark mapping and
ARCHITECTURE.md for the package map.

## Contents

`)
	report.WriteString(toc.String())
	report.WriteString("\n")
	report.WriteString(body.String())

	if err := artifact.WriteFileAtomic(filepath.Join(out, "REPORT.md"), []byte(report.String())); err != nil {
		return err
	}
	data, err := manifest.Encode()
	if err != nil {
		return err
	}
	if err := artifact.ValidateReportManifest(data); err != nil {
		return fmt.Errorf("labreport: generated manifest does not validate: %w", err)
	}
	if err := artifact.WriteFileAtomic(filepath.Join(out, "manifest.json"), data); err != nil {
		return err
	}
	pct := 0.0
	if totalCells > 0 {
		pct = 100 * float64(totalHits) / float64(totalCells)
	}
	fmt.Fprintf(log, "report: %d figures, %d runs, %d cached (%.0f%% cache hits)\n",
		len(jobs), totalCells, totalHits, pct)
	if snaps != nil {
		st := snaps.Stats()
		fmt.Fprintf(log, "snapshots: %d warm-up hits, %d cold, %d stored\n", st.Hits, st.Misses, st.Stored)
	}
	fmt.Fprintf(log, "wrote %s, %s and %s\n",
		filepath.Join(out, "REPORT.md"), filepath.Join(out, "manifest.json"), figDir)
	return nil
}

// writeSection renders one figure's report section: heading, registry
// metadata, spec echo, the markdown table, and the SVG references.
func writeSection(w *strings.Builder, spec figures.Spec, note string, stats artifact.RunStats, res *lab.SweepResult, svgs []string) error {
	fmt.Fprintf(w, "## %s\n\n", spec.Name)
	fmt.Fprintf(w, "**%s**\n\n", spec.Title)
	if spec.Desc != "" {
		fmt.Fprintf(w, "%s\n\n", spec.Desc)
	}
	if note != "" {
		fmt.Fprintf(w, "%s\n\n", note)
	}
	fmt.Fprintf(w, "- topology `%s` · policy `%s` · trigger `%s` · axis `%s` · %d runs/point · seed %d\n",
		res.TopoLabel(), res.PolicyLabel(), res.EventLabel(), res.Axis.Name(), res.Runs, res.BaseSeed)
	fmt.Fprintf(w, "- spec `sha256:%s`\n", stats.SpecHash)
	fmt.Fprintf(w, "- store `store/%s/` (%d records)\n\n", stats.SpecHash, stats.Total)
	if err := lab.Write(w, lab.FormatMarkdown, res); err != nil {
		return err
	}
	w.WriteString("\n")
	for i, svg := range svgs {
		alt := spec.Name
		if i > 0 {
			alt = fmt.Sprintf("%s epoch %d", spec.Name, i-1)
		}
		fmt.Fprintf(w, "![%s boxplot](%s)\n", alt, filepath.ToSlash(svg))
	}
	w.WriteString("\n")
	return nil
}

// writeFigureSVGs renders the sweep's boxplot (and one per-epoch
// boxplot per scheduled event of a multi-event workload) into dir and
// returns the emitted paths relative to the report root.
func writeFigureSVGs(dir, name, specHash string, res *lab.SweepResult) ([]string, error) {
	cfg := plot.BoxplotConfig{
		Title:    fmt.Sprintf("%s convergence on %s", res.EventLabel(), res.TopoLabel()),
		Subtitle: fmt.Sprintf("spec sha256:%.12s", specHash),
		XLabel:   res.Axis.Name(),
		YLabel:   "convergence time (s)",
	}
	if res.Axis.Kind == lab.AxisSDNCount {
		cfg.XLabel = "fraction of ASes with centralized route control"
	}
	var rels []string
	write := func(file string, c plot.BoxplotConfig, boxes []plot.Box) error {
		var sb strings.Builder
		if err := plot.WriteBoxplot(&sb, c, boxes); err != nil {
			return err
		}
		if err := artifact.WriteFileAtomic(filepath.Join(dir, file), []byte(sb.String())); err != nil {
			return err
		}
		rels = append(rels, filepath.Join("figures", file))
		return nil
	}
	if err := write(name+".svg", cfg, res.Boxes()); err != nil {
		return nil, err
	}
	if len(res.Cells) > 0 {
		for i, ep := range res.Cells[0].Epochs {
			ecfg := cfg
			ecfg.Title = fmt.Sprintf("epoch %d (@%s %s) on %s", i, ep.At, ep.Kind.Verb(), res.TopoLabel())
			if err := write(fmt.Sprintf("%s-e%d.svg", name, i), ecfg, res.EpochBoxes(i)); err != nil {
				return nil, err
			}
		}
	}
	return rels, nil
}

// manifestFigure builds one figure's manifest entry.
func manifestFigure(spec figures.Spec, stats artifact.RunStats, res *lab.SweepResult, svgs []string) artifact.ReportFigure {
	f := artifact.ReportFigure{
		Name:       spec.Name,
		Title:      spec.Title,
		SpecSHA256: stats.SpecHash,
		Topology:   res.TopoLabel(),
		Policy:     res.PolicyLabel(),
		Event:      res.EventLabel(),
		Axis:       res.Axis.Name(),
		Runs:       res.Runs,
		BaseSeed:   res.BaseSeed,
		SVG:        filepath.ToSlash(svgs[0]),
	}
	for _, svg := range svgs[1:] {
		f.EpochSVGs = append(f.EpochSVGs, filepath.ToSlash(svg))
	}
	for _, c := range res.Cells {
		f.Cells = append(f.Cells, artifact.ReportCell{
			Label:       c.Label,
			N:           c.Summary.N,
			MedianS:     c.Summary.Median,
			MeanUpdates: c.MeanUpdatesSent(),
		})
	}
	if a, b, r2, ok := res.Fit(); ok {
		f.Fit = &artifact.ReportFit{InterceptS: a, SlopeS: b, R2: r2}
	}
	return f
}

// checkReport validates an existing report directory: the manifest
// against its schema and seal, every referenced store directory
// against its sealed sweep manifest, and the referenced SVGs exist.
func checkReport(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	if err := artifact.ValidateReportManifest(data); err != nil {
		return err
	}
	var m artifact.ReportManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for _, f := range m.Figures {
		if err := artifact.VerifySweepDir(filepath.Join(dir, "store", f.SpecSHA256)); err != nil {
			return fmt.Errorf("figure %s: %w", f.Name, err)
		}
		for _, svg := range append([]string{f.SVG}, f.EpochSVGs...) {
			if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(svg))); err != nil {
				return fmt.Errorf("figure %s: %w", f.Name, err)
			}
		}
	}
	return nil
}

// writeExperimentsMD prints the generated EXPERIMENTS.md registry
// block: one entry per registry spec with its resolved default
// configuration, bracketed by markers the CI drift check keys on.
func writeExperimentsMD(w io.Writer) error {
	fmt.Fprintln(w, experimentsMDBegin)
	fmt.Fprintf(w, "The registry holds %d experiments (`convergence -list` prints the same\nset; `labreport` renders every one into REPORT.md). Each entry below\nshows the spec's resolved defaults at seed 1; every flag the CLI\naccepts overrides them per run.\n", len(figures.Registry()))
	for _, spec := range figures.Registry() {
		sweep, err := spec.Build(figures.Options{BaseSeed: 1})
		if err != nil {
			return fmt.Errorf("labreport: %s: %w", spec.Name, err)
		}
		res := &lab.SweepResult{
			Name:     sweep.Name,
			Event:    sweep.Base.Event,
			Workload: sweep.Base.Workload,
			Topo:     sweep.Base.Topo,
			Policy:   sweep.Base.Policy,
			Axis:     sweep.Axis,
		}
		runs := sweep.Runs
		if runs <= 0 {
			runs = 1
		}
		labels := make([]string, sweep.Axis.Len())
		for i := range labels {
			labels[i] = sweep.Axis.Label(i)
		}
		fmt.Fprintf(w, "\n- **`%s`** — %s.\n", spec.Name, spec.Title)
		fmt.Fprintf(w, "  Default: trigger `%s` on `%s`, policy `%s`, axis `%s` (%s), %d runs/point.\n",
			res.EventLabel(), res.TopoLabel(), res.PolicyLabel(), sweep.Axis.Name(), strings.Join(labels, ", "), runs)
		if spec.Desc != "" {
			fmt.Fprintf(w, "  %s\n", spec.Desc)
		}
	}
	fmt.Fprintf(w, "\n- **`subcluster`** — §2 design goal: an intra-cluster link failure must\n  not isolate sub-clusters; connectivity survives over legacy paths.\n  A scripted sequence, not a sweep: only `-mrai` and `-seed` apply.\n")
	fmt.Fprintln(w, experimentsMDEnd)
	return nil
}

// Markers bracketing the generated registry block in EXPERIMENTS.md.
const (
	experimentsMDBegin = "<!-- BEGIN GENERATED: experiment registry (labreport -experiments-md; do not edit by hand) -->"
	experimentsMDEnd   = "<!-- END GENERATED: experiment registry -->"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labreport:", err)
	os.Exit(1)
}
