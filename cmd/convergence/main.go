// Command convergence regenerates the paper's evaluation series (see
// EXPERIMENTS.md): Figure 2's withdrawal sweep, the §4 announcement
// and fail-over experiments, and the repository's ablations.
//
// Usage:
//
//	convergence -exp fig2                     # the paper's Figure 2
//	convergence -exp announce -runs 5
//	convergence -exp failover -clique 8
//	convergence -exp mrai|size|debounce|subcluster|exploration
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bgp"
	"repro/internal/figures"
	"repro/internal/plot"
)

func main() {
	exp := flag.String("exp", "fig2", "fig2|announce|failover|mrai|size|debounce|subcluster|exploration|flap")
	clique := flag.Int("clique", 16, "clique size")
	runs := flag.Int("runs", 10, "runs per point (the paper's boxplots use 10)")
	seed := flag.Int64("seed", 1, "base seed")
	mrai := flag.Duration("mrai", 30*time.Second, "BGP MinRouteAdvertisementInterval")
	debounce := flag.Duration("debounce", 100*time.Millisecond, "controller recomputation delay")
	parallel := flag.Int("parallel", 0, "concurrent emulation runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	svg := flag.String("svg", "", "also render the sweep as an SVG boxplot to this file")
	flag.Parse()

	timers := bgp.DefaultTimers()
	timers.MRAI = *mrai

	sweep := func(kind figures.Kind) {
		cfg := figures.SweepConfig{
			Kind:        kind,
			CliqueSize:  *clique,
			Runs:        *runs,
			BaseSeed:    *seed,
			Timers:      timers,
			Debounce:    *debounce,
			Parallelism: *parallel,
		}
		points, err := figures.RunSweep(cfg)
		if err != nil {
			fatal(err)
		}
		if err := figures.WriteTable(os.Stdout, kind, *clique, points); err != nil {
			fatal(err)
		}
		a, b, r2 := figures.LinearFit(points)
		fmt.Printf("# linear fit: t = %.1fs %+.1fs*fraction (r2=%.3f)\n", a, b, r2)
		if *svg != "" {
			boxes := make([]plot.Box, len(points))
			for i, p := range points {
				boxes[i] = plot.Box{
					Label:   fmt.Sprintf("%.0f%%", 100*p.Fraction),
					Summary: p.Summary,
				}
			}
			f, err := os.Create(*svg)
			if err != nil {
				fatal(err)
			}
			cfg := plot.BoxplotConfig{
				Title:  fmt.Sprintf("%s convergence on a %d-AS clique", kind, *clique),
				XLabel: "fraction of ASes with centralized route control",
				YLabel: "convergence time (s)",
			}
			if err := plot.WriteBoxplot(f, cfg, boxes); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("# boxplot written to %s\n", *svg)
		}
	}

	switch *exp {
	case "fig2":
		sweep(figures.Withdrawal)
	case "announce":
		sweep(figures.Announcement)
	case "failover":
		sweep(figures.Failover)
	case "mrai":
		points, err := figures.MRAISweep(*clique, *runs, nil, *seed, *parallel)
		if err != nil {
			fatal(err)
		}
		if err := figures.WriteMRAITable(os.Stdout, points); err != nil {
			fatal(err)
		}
	case "size":
		points, err := figures.CliqueSizeSweep(nil, *runs, timers, *seed, *parallel)
		if err != nil {
			fatal(err)
		}
		if err := figures.WriteSizeTable(os.Stdout, points); err != nil {
			fatal(err)
		}
	case "debounce":
		points, err := figures.DebounceAblation(*clique, *clique/2, *runs, nil, timers, *seed, *parallel)
		if err != nil {
			fatal(err)
		}
		if err := figures.WriteDebounceTable(os.Stdout, points); err != nil {
			fatal(err)
		}
	case "subcluster":
		res, err := figures.SubClusterExperiment(timers, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reachable before split: %v\n", res.ReachableBeforeSplit)
		fmt.Printf("reachable after split:  %v (over legacy paths)\n", res.ReachableAfterSplit)
		fmt.Printf("re-convergence:         %.3fs\n", res.ReconvergenceTime.Seconds())
	case "flap":
		points, err := figures.FlapStabilityAblation(*clique, 6, 20*time.Second, timers, *seed, *parallel)
		if err != nil {
			fatal(err)
		}
		if err := figures.WriteFlapTable(os.Stdout, points); err != nil {
			fatal(err)
		}
	case "exploration":
		points, err := figures.PathExplorationSweep(*clique, nil, timers, *seed, *parallel)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %12s %10s\n", "sdn_k", "best_changes", "updates")
		for _, p := range points {
			fmt.Printf("%-8d %12d %10d\n", p.SDNCount, p.BestChanges, p.Updates)
		}
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "convergence:", err)
	os.Exit(1)
}
