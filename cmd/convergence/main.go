// Command convergence regenerates the paper's evaluation series (see
// EXPERIMENTS.md) through the experiment registry in internal/figures:
// Figure 2's withdrawal sweep, the §4 announcement, fail-over and
// sub-cluster experiments, and the repository's ablations (MRAI,
// topology size, controller debounce, path exploration, flap
// stability), on any topology the generators produce and in any of
// the structured output formats.
//
// Usage:
//
//	convergence -list                          # the experiment registry
//	convergence -exp fig2                      # the paper's Figure 2
//	convergence -exp announce -runs 5
//	convergence -exp failover -format json
//	convergence -exp fig2 -topology grid 4 4   # any generator: clique, line,
//	                                           # ring, star, tree, grid,
//	                                           # internet, er, ba
//	convergence -exp fig2 -placement degree    # SDN placement: last (paper),
//	                                           # first, degree, none, as 2,3
//	convergence -exp fig2 -policy gao-rexford  # routing policy: permit-all
//	                                           # (default), gao-rexford,
//	                                           # prefix-filter
//	convergence -exp vf|policyload|hijack      # the policy figure family
//	convergence -exp maint|cascade|churn       # the workload figure family
//	                                           # (multi-event schedules with
//	                                           # per-epoch rows)
//	convergence -exp fig2 -workload "at 0s withdraw; at 10m announce"
//	                                           # replace the trigger with a
//	                                           # custom schedule (also:
//	                                           # hijack, linkdown/linkup a b,
//	                                           # failover [a b], migrate as)
//	convergence -exp mrai|size|debounce|exploration|flap
//	convergence -exp subcluster                # scripted split experiment
//	convergence -exp fig2 -sdn-counts 0,8,16 -runs 3
//	convergence -exp fig2 -progress            # stream per-run completion
//	convergence -exp fig2 -format csv|json|table|markdown [-svg fig2.svg]
//	convergence -exp fig2 -out results/        # content-addressed artifact
//	                                           # store: completed cells are
//	                                           # cached, so rerunning (or an
//	                                           # interrupted sweep) resumes
//	                                           # instead of recomputing
//	convergence -exp fig2 -out results/ -snapshot-cache
//	                                           # checkpoint warm-ups: every
//	                                           # distinct warm-up converges
//	                                           # once, is snapshotted under
//	                                           # results/snapshots/, and
//	                                           # later (cell, run)s restore
//	                                           # and fork it — results are
//	                                           # byte-identical either way
//	convergence -exp ctrlfail|lossy            # the chaos figure family
//	convergence -exp fig2 -loss 0.05           # drop 5% of messages on every
//	                                           # inter-AS link (seeded per
//	                                           # link: still reproducible)
//	convergence -exp fig2 -delay 20ms -jitter 5ms
//	                                           # a SIGINT/SIGTERM while a
//	                                           # -out sweep runs drains the
//	                                           # in-flight runs, flushes
//	                                           # their records, seals a
//	                                           # partial manifest and exits
//	                                           # cleanly; rerun to resume
//	convergence -exp fig2 -tolerate -retries 1 -wall-limit 2m
//	                                           # failure-tolerant sweep: a
//	                                           # panicking, timed-out or
//	                                           # broken run is recorded as a
//	                                           # cell failure (annotated in
//	                                           # every output format) and
//	                                           # the rest of the grid runs
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/bgp"
	"repro/internal/figures"
	"repro/internal/lab"
	"repro/internal/plot"
)

func main() {
	exp := flag.String("exp", "fig2", "experiment name (see -list)")
	list := flag.Bool("list", false, "list the experiment registry and exit")
	topo := flag.String("topology", "", `topology spec, e.g. "clique 16" or "grid 4 4" (default per experiment; trailing args join the spec)`)
	placement := flag.String("placement", "", "SDN placement strategy: last|first|degree for sdn-count sweeps (default last, the paper's deployment); none or as 2,3,... only where the experiment fixes the cluster (e.g. debounce)")
	policyName := flag.String("policy", "", "routing policy template: permit-all|gao-rexford|prefix-filter (default per experiment: permit-all for the classic figures, gao-rexford for vf/hijack)")
	sdnCounts := flag.String("sdn-counts", "", "comma-separated SDN cluster sizes for sdn-count sweeps, e.g. 0,8,16 (default per experiment)")
	workload := flag.String("workload", "", `replace the trigger with a schedule of "at <offset> <event> [target]" clauses separated by ';' (Figure 2 family only; maint/cascade/churn fix their own schedules)`)
	progress := flag.Bool("progress", false, "stream per-run completion to stderr while the sweep runs")
	runs := flag.Int("runs", 0, "runs per point (0 = experiment default; the paper's boxplots use 10)")
	seed := flag.Int64("seed", 1, "base seed")
	mrai := flag.Duration("mrai", 30*time.Second, "BGP MinRouteAdvertisementInterval")
	debounce := flag.Duration("debounce", 100*time.Millisecond, "controller recomputation delay (an explicit 0 disables the delay entirely)")
	parallel := flag.Int("parallel", 0, "concurrent emulation runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	format := flag.String("format", "table", "output format: table|csv|json|markdown")
	svg := flag.String("svg", "", "also render the sweep as an SVG boxplot to this file")
	out := flag.String("out", "", "artifact store directory: file every (cell, run) result under the sweep's spec hash and skip cells already stored, so repeated or interrupted sweeps resume instead of recomputing")
	snapCache := flag.Bool("snapshot-cache", false, "checkpoint each distinct warm-up (converged pre-trigger state) once and restore/fork it for every (cell, run) sharing it; with -out the snapshots persist under <out>/snapshots/ and accelerate future invocations, without -out they are shared in-memory within this run — results are byte-identical with or without the cache")
	loss := flag.Float64("loss", 0, "per-message loss probability [0,1] on every inter-AS link; each link's loss stream is seeded from the trial seed, so lossy runs stay byte-reproducible")
	delay := flag.Duration("delay", 0, "one-way delay of every inter-AS link (0 keeps the emulator default; per-edge topology delays win)")
	jitter := flag.Duration("jitter", 0, "maximum extra seeded random delay on data-plane probe sends, uniform in [0, jitter]")
	wallLimit := flag.Duration("wall-limit", 0, "wall-clock budget per emulation run: a run over budget fails (with -tolerate, as a recorded cell failure) instead of hanging the sweep")
	tolerate := flag.Bool("tolerate", false, "record per-run failures (panic, timeout, error) and keep sweeping instead of aborting on the first broken run")
	retries := flag.Int("retries", 0, "with -tolerate, retry timed-out runs up to this many times before recording the failure")
	flag.Parse()

	if *list {
		for _, s := range figures.Registry() {
			fmt.Printf("%-12s %s\n", s.Name, s.Title)
		}
		fmt.Printf("%-12s %s\n", "subcluster", "§2 design goal: intra-cluster split survives over legacy paths")
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	f, err := lab.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}

	if *exp == "subcluster" {
		// The split experiment is a scripted sequence, not a sweep:
		// only -mrai and -seed apply, so reject the sweep flags
		// instead of silently dropping them.
		for _, name := range []string{"format", "topology", "placement", "policy", "sdn-counts", "workload", "progress", "runs", "debounce", "parallel", "svg", "out", "snapshot-cache", "loss", "delay", "jitter", "wall-limit", "tolerate", "retries"} {
			if set[name] {
				fatal(fmt.Errorf("-%s does not apply to the subcluster experiment (it is a scripted sequence, not a sweep)", name))
			}
		}
		runSubCluster(*mrai, *seed)
		return
	}

	opts := figures.Options{
		BaseSeed:    *seed,
		Runs:        *runs,
		Parallelism: *parallel,
	}
	if set["mrai"] {
		opts.MRAI = *mrai
	}
	if set["debounce"] {
		db := *debounce
		if db == 0 {
			// A zero-length window is no debounce at all; the config
			// convention reserves 0 for "default", so map an explicit
			// -debounce 0 to disabled.
			db = -1
		}
		opts.Debounce = &db
	}
	if set["topology"] {
		// Accept both -topology "grid 4 4" and -topology grid 4 4 (the
		// spec's trailing integers arrive as positional arguments, so
		// an unquoted spec must be the last flag: flag parsing stops at
		// the first positional argument).
		fields := strings.Fields(*topo)
		rest := flag.Args()
		for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			fields = append(fields, rest[0])
			rest = rest[1:]
		}
		if len(rest) > 0 {
			fatal(fmt.Errorf("arguments after the topology spec are not parsed as flags: %q — quote the spec (-topology %q) or put -topology last", rest, strings.Join(fields, " ")))
		}
		spec, err := lab.ParseTopo(fields)
		if err != nil {
			fatal(err)
		}
		opts.Topo = &spec
	} else if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if set["placement"] {
		p, err := lab.ParsePlacementString(*placement)
		if err != nil {
			fatal(err)
		}
		opts.Placement = &p
	}
	if set["policy"] {
		p, err := lab.ParsePolicy(*policyName)
		if err != nil {
			fatal(err)
		}
		opts.Policy = p
	}
	if set["workload"] {
		w, err := lab.ParseWorkload(*workload)
		if err != nil {
			fatal(err)
		}
		opts.Workload = w
	}
	if set["sdn-counts"] {
		for _, tok := range strings.Split(*sdnCounts, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			k, err := strconv.Atoi(tok)
			if err != nil {
				fatal(fmt.Errorf("bad -sdn-counts entry %q", tok))
			}
			opts.SDNCounts = append(opts.SDNCounts, k)
		}
		if len(opts.SDNCounts) == 0 {
			fatal(fmt.Errorf("-sdn-counts lists no cluster sizes"))
		}
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "progress: %d/%d runs\n", done, total)
		}
	}

	spec, ok := figures.Lookup(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (see -list)", *exp))
	}
	sweep, err := spec.Build(opts)
	if err != nil {
		fatal(err)
	}
	// The chaos overlays mutate the built sweep: they are emulation-
	// layer knobs that apply uniformly to every registry entry.
	if set["loss"] {
		if sweep.Axis.Kind == lab.AxisLoss {
			fatal(fmt.Errorf("-loss does not apply to %s: the experiment sweeps the loss rate itself", *exp))
		}
		sweep.Base.LinkLoss = *loss
	}
	if set["delay"] {
		sweep.Base.LinkDelay = *delay
	}
	if set["jitter"] {
		sweep.Base.LinkJitter = *jitter
	}
	if set["wall-limit"] {
		sweep.Base.WallLimit = *wallLimit
	}
	if *tolerate {
		sweep.Tolerate = true
		sweep.Retries = *retries
		sweep.RetryBackoff = 100 * time.Millisecond
	} else if set["retries"] {
		fatal(fmt.Errorf("-retries only applies with -tolerate (a non-tolerant sweep aborts on the first failure)"))
	}

	// Graceful drain: the first SIGINT/SIGTERM stops scheduling new
	// runs and lets in-flight ones finish (with -out their records are
	// flushed and the partial manifest sealed, so rerunning the same
	// command resumes); a second signal force-quits.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "convergence: interrupt — draining in-flight runs (interrupt again to force quit)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()
	sweep.Stop = stop

	var res *lab.SweepResult
	var snapStats func() artifact.SnapshotStats
	if *out != "" {
		// Through the artifact store: completed cells load from disk,
		// fresh ones are filed, and the sealed manifest is refreshed.
		store, err := artifact.Open(*out)
		if err != nil {
			fatal(err)
		}
		if *snapCache {
			snaps, err := store.Snapshots()
			if err != nil {
				fatal(err)
			}
			sweep.Snapshots = snaps
			snapStats = snaps.Stats
		}
		var stats artifact.RunStats
		res, stats, err = artifact.RunSweep(store, sweep)
		if errors.Is(err, lab.ErrStopped) {
			fmt.Fprintf(os.Stderr, "store: spec %.12s — interrupted with %d/%d runs done (%d cached, %d executed); partial manifest sealed — rerun the same command to resume\n",
				stats.SpecHash, stats.Hits+stats.Executed+stats.Failed, stats.Total, stats.Hits, stats.Executed)
			return
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "store: spec %.12s — %d/%d runs cached, %d executed, %d failed\n",
			stats.SpecHash, stats.Hits, stats.Total, stats.Executed, stats.Failed)
	} else {
		if *snapCache {
			sweep.Snapshots = lab.NewMemorySnapshotCache()
		}
		res, err = sweep.Run()
		if errors.Is(err, lab.ErrStopped) {
			fmt.Fprintln(os.Stderr, "convergence: interrupted; completed runs are discarded without -out (use -out to make interrupted sweeps resumable)")
			return
		}
		if err != nil {
			fatal(err)
		}
	}
	if snapStats != nil {
		st := snapStats()
		fmt.Fprintf(os.Stderr, "snapshots: %d warm-up hits, %d cold, %d stored\n", st.Hits, st.Misses, st.Stored)
	}
	if n := len(res.Failures); n > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d failed run(s) recorded; see the failure annotations in the output\n", n)
	}
	if err := lab.Write(os.Stdout, f, res); err != nil {
		fatal(err)
	}
	if *svg != "" {
		out, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		cfg := plot.BoxplotConfig{
			Title:  fmt.Sprintf("%s convergence on %s", res.EventLabel(), res.TopoLabel()),
			XLabel: res.Axis.Name(),
			YLabel: "convergence time (s)",
		}
		if res.Axis.Kind == lab.AxisSDNCount {
			cfg.XLabel = "fraction of ASes with centralized route control"
		}
		if err := plot.WriteBoxplot(out, cfg, res.Boxes()); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("# boxplot written to %s\n", *svg)
		// Multi-event workloads: one additional boxplot per scheduled
		// event (the per-epoch view of the same sweep).
		if len(res.Cells) > 0 && len(res.Cells[0].Epochs) > 0 {
			base := strings.TrimSuffix(*svg, ".svg")
			for i, ep := range res.Cells[0].Epochs {
				name := fmt.Sprintf("%s-e%d.svg", base, i)
				out, err := os.Create(name)
				if err != nil {
					fatal(err)
				}
				ecfg := cfg
				ecfg.Title = fmt.Sprintf("epoch %d (@%s %s) convergence on %s", i, ep.At, ep.Kind.Verb(), res.TopoLabel())
				if err := plot.WriteBoxplot(out, ecfg, res.EpochBoxes(i)); err != nil {
					fatal(err)
				}
				if err := out.Close(); err != nil {
					fatal(err)
				}
				fmt.Printf("# epoch boxplot written to %s\n", name)
			}
		}
	}
}

func runSubCluster(mrai time.Duration, seed int64) {
	timers := bgp.DefaultTimers()
	timers.MRAI = mrai
	res, err := figures.SubClusterExperiment(timers, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("reachable before split: %v\n", res.ReachableBeforeSplit)
	fmt.Printf("reachable after split:  %v (over legacy paths)\n", res.ReachableAfterSplit)
	fmt.Printf("re-convergence:         %.3fs\n", res.ReconvergenceTime.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "convergence:", err)
	os.Exit(1)
}
