// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be archived next to the
// lab's other artifacts and diffed across commits (the BENCH_*.json
// trajectory files at the repo root).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run xxx . | benchjson > BENCH_SMOKE.json
//	benchjson -in bench.txt -label smoke > BENCH_SMOKE.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. The three standard Go metrics
// get named fields; every other `<value> <unit>` pair (b.ReportMetric
// output) lands in Metrics keyed by unit.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -N name
	// suffix; 1 when the suffix is absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the B/op metric, if -benchmem was on.
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is the allocs/op metric, if -benchmem was on.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any further unit → value pairs on the line.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document: the `key: value` header lines go test
// prints (goos, goarch, pkg, cpu), an optional caller-supplied label,
// and every benchmark line in input order.
type Report struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `BenchmarkName[-procs] <iterations> <rest>`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

// parse reads `go test -bench` output and collects the header fields
// and result lines. Unrecognized lines (PASS, ok, test logs) are
// skipped; a malformed metric pair on a benchmark line is an error so
// silent truncation cannot masquerade as a clean conversion.
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(key, " ") {
			switch key {
			case "goos":
				rep.Goos = val
			case "goarch":
				rep.Goarch = val
			case "pkg":
				rep.Pkg = val
			case "cpu":
				rep.CPU = strings.TrimSpace(val)
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark"), Procs: 1}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return rep, fmt.Errorf("benchjson: %q: bad procs suffix: %v", line, err)
			}
			b.Procs = p
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return rep, fmt.Errorf("benchjson: %q: bad iteration count: %v", line, err)
		}
		b.Iterations = iters
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return rep, fmt.Errorf("benchjson: %q: odd metric fields %v", line, fields)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("benchjson: %q: bad metric value %q: %v", line, fields[i], err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				val := v
				b.BytesPerOp = &val
			case "allocs/op":
				val := v
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

func main() {
	in := flag.String("in", "", "read `go test -bench` output from this file instead of stdin")
	out := flag.String("out", "", "write the JSON document to this file instead of stdout")
	label := flag.String("label", "", "optional label recorded in the document (e.g. smoke, full)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines in input (did the bench run fail?)"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	os.Stdout.Write(data)
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
