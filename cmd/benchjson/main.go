// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be archived next to the
// lab's other artifacts and diffed across commits (the BENCH_*.json
// trajectory files at the repo root). The parser lives in
// internal/benchfmt, shared with the repolint zeroalloc gate.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run xxx . | benchjson > BENCH_SMOKE.json
//	benchjson -in bench.txt -label smoke > BENCH_SMOKE.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	in := flag.String("in", "", "read `go test -bench` output from this file instead of stdin")
	out := flag.String("out", "", "write the JSON document to this file instead of stdout")
	label := flag.String("label", "", "optional label recorded in the document (e.g. smoke, full)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		//lint:errcheck file opened read-only; Close cannot lose buffered writes
		defer f.Close()
		src = f
	}
	rep, err := benchfmt.Parse(src)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	rep.Stamp()
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines in input (did the bench run fail?)"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	if _, err := os.Stdout.Write(data); err != nil {
		fatal(err)
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
