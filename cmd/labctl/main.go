// Command labctl is the thin client for the labd daemon: it submits
// sweeps (canonical spec files or registry presets with the same
// override flags as `convergence`), watches their telemetry streams
// and fetches their results. Result bytes go to stdout and are
// byte-identical to the same spec run via `convergence -out`;
// everything else goes to stderr, so labctl pipes cleanly.
//
// Usage:
//
//	labctl [-addr host:port] <command> [args]
//
//	labctl presets                             # the experiment registry
//	labctl submit -exp fig2                    # submit a preset
//	labctl submit -exp fig2 -mrai 5s -runs 3   # with convergence-style
//	                                           # overrides (-topology,
//	                                           # -placement, -policy,
//	                                           # -sdn-counts, -workload,
//	                                           # -seed, -debounce, -loss,
//	                                           # -delay, -jitter)
//	labctl submit -spec sweep.json             # submit canonical spec bytes
//	labctl submit -exp fig2 -client alice      # tenant for fair queueing
//	labctl submit -exp fig2 -wait -format csv  # block until done, then
//	                                           # write the result to stdout
//	labctl jobs                                # all jobs, submission order
//	labctl job 3fa9c1d2                        # one job (hash prefix ok)
//	labctl result 3fa9c1d2 -format markdown    # fetch a done job's result
//	labctl watch 3fa9c1d2                      # follow the SSE event log
//	labctl status                              # daemon status
//
// The default daemon address is http://127.0.0.1:8080; -addr accepts
// host:port or a full http:// URL.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/labd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "labd address (host:port or http:// URL)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "presets":
		runPresets(base)
	case "submit":
		runSubmit(base, args)
	case "jobs":
		runJobs(base)
	case "job":
		runJob(base, args)
	case "result":
		runResult(base, args)
	case "watch":
		runWatch(base, args)
	case "status":
		runStatus(base)
	default:
		fatal(fmt.Errorf("unknown command %q (run labctl -h)", cmd))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `labctl — client for the labd sweep daemon

usage: labctl [-addr host:port] <command> [args]

commands:
  presets                list the experiment registry
  submit [flags]         submit a sweep (-exp preset or -spec file)
  jobs                   list all jobs in submission order
  job <id>               show one job (spec-hash prefix of ≥8 digits)
  result <id> [-format]  fetch a done job's result (table|csv|json|markdown)
  watch <id> [-from n]   follow the job's SSE event log
  status                 daemon status (workers, queues, job states)

run "labctl submit -h" for the submit flag set.
`)
	flag.PrintDefaults()
}

// runSubmit submits a preset or a canonical spec file.
func runSubmit(base string, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	client := fs.String("client", "", "tenant name for fair scheduling (default anonymous)")
	name := fs.String("name", "", "sweep name for outputs (default: preset name or spec hash)")
	exp := fs.String("exp", "", "experiment preset to build server-side (see labctl presets)")
	specFile := fs.String("spec", "", "canonical spec file to submit verbatim (- for stdin)")
	topo := fs.String("topology", "", `topology override, e.g. "clique 16" or "grid 4 4"`)
	placement := fs.String("placement", "", "SDN placement override: last|first|degree|none|as 2,3,...")
	policy := fs.String("policy", "", "routing-policy override: permit-all|gao-rexford|prefix-filter")
	sdnCounts := fs.String("sdn-counts", "", "comma-separated SDN cluster sizes, e.g. 0,8,16")
	workload := fs.String("workload", "", `schedule override: "at <offset> <event> [target]; ..."`)
	runs := fs.Int("runs", 0, "runs per point (0 = experiment default)")
	seed := fs.Int64("seed", 1, "base seed")
	mrai := fs.String("mrai", "", "BGP MinRouteAdvertisementInterval override, e.g. 5s")
	debounce := fs.String("debounce", "", "controller recomputation delay override (0 disables)")
	loss := fs.Float64("loss", 0, "per-message link-loss probability overlay")
	delay := fs.String("delay", "", "one-way link-delay overlay, e.g. 20ms")
	jitter := fs.String("jitter", "", "probe-jitter overlay, e.g. 5ms")
	wait := fs.Bool("wait", false, "follow the job to completion, then write the result to stdout")
	format := fs.String("format", "table", "result format with -wait: table|csv|json|markdown")
	//lint:errcheck ExitOnError flag sets never return an error
	fs.Parse(args)
	if fs.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", fs.Args()))
	}

	req := labd.SubmitRequest{Client: *client, Name: *name}
	switch {
	case *exp != "" && *specFile != "":
		fatal(fmt.Errorf("use -exp or -spec, not both"))
	case *exp != "":
		req.Preset = *exp
		opt := labd.PresetOptions{
			Topology:  *topo,
			Placement: *placement,
			Policy:    *policy,
			Workload:  *workload,
			Runs:      *runs,
			Seed:      *seed,
			MRAI:      *mrai,
			Debounce:  *debounce,
			Loss:      *loss,
			Delay:     *delay,
			Jitter:    *jitter,
		}
		if *sdnCounts != "" {
			for _, tok := range strings.Split(*sdnCounts, ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					continue
				}
				k, err := strconv.Atoi(tok)
				if err != nil {
					fatal(fmt.Errorf("bad -sdn-counts entry %q", tok))
				}
				opt.SDNCounts = append(opt.SDNCounts, k)
			}
		}
		req.Options = &opt
	case *specFile != "":
		var data []byte
		var err error
		if *specFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*specFile)
		}
		if err != nil {
			fatal(err)
		}
		req.Spec = data
	default:
		fatal(fmt.Errorf("submit needs -exp <preset> or -spec <file>"))
	}

	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	data := readBody(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		fatal(apiError(data, resp.StatusCode))
	}
	var sub labd.SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		fatal(err)
	}
	verb := "accepted"
	if sub.Coalesced {
		verb = "coalesced onto existing job"
	}
	fmt.Fprintf(os.Stderr, "labctl: %s %.12s (%s, %s)\n", verb, sub.Job.ID, sub.Job.Name, sub.Job.State)
	if !*wait {
		fmt.Println(sub.Job.ID)
		return
	}
	if st := follow(base, sub.Job.ID, 0); st != labd.StateDone {
		fatal(fmt.Errorf("job %.12s finished %s", sub.Job.ID, st))
	}
	out := fetch(base, "/v1/jobs/"+sub.Job.ID+"/result?format="+*format)
	//lint:errcheck a failed stdout write surfaces at process exit
	os.Stdout.Write(out)
}

// runPresets lists the registry.
func runPresets(base string) {
	var v struct {
		Presets []labd.Preset `json:"presets"`
	}
	getJSON(base, "/v1/presets", &v)
	for _, p := range v.Presets {
		fmt.Printf("%-12s %s\n", p.Name, p.Title)
	}
}

// runJobs lists every job.
func runJobs(base string) {
	var v struct {
		Jobs []labd.JobStatus `json:"jobs"`
	}
	getJSON(base, "/v1/jobs", &v)
	for _, j := range v.Jobs {
		fmt.Printf("%.12s  %-11s %3d/%-3d runs  %-12s clients=%s\n",
			j.ID, j.State, j.Completed, j.Total, j.Name, strings.Join(j.Clients, ","))
	}
}

// runJob prints one job's status JSON.
func runJob(base string, args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("usage: labctl job <id>"))
	}
	//lint:errcheck a failed stdout write surfaces at process exit
	os.Stdout.Write(fetch(base, "/v1/jobs/"+args[0]))
}

// runResult fetches a done job's encoded result to stdout.
func runResult(base string, args []string) {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	format := fs.String("format", "table", "output format: table|csv|json|markdown")
	rest, id := splitID(fs, args, "result")
	//lint:errcheck ExitOnError flag sets never return an error
	fs.Parse(rest)
	//lint:errcheck a failed stdout write surfaces at process exit
	os.Stdout.Write(fetch(base, "/v1/jobs/"+id+"/result?format="+*format))
}

// runWatch follows a job's event stream, printing one line per event.
func runWatch(base string, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	from := fs.Int("from", 0, "replay the log from this sequence number")
	rest, id := splitID(fs, args, "watch")
	//lint:errcheck ExitOnError flag sets never return an error
	fs.Parse(rest)
	st := follow(base, id, *from)
	fmt.Fprintf(os.Stderr, "labctl: job %s is %s\n", id, st)
	if st != labd.StateDone {
		os.Exit(1)
	}
}

// runStatus prints the daemon status JSON.
func runStatus(base string) {
	//lint:errcheck a failed stdout write surfaces at process exit
	os.Stdout.Write(fetch(base, "/v1/status"))
}

// splitID pulls the positional <id> argument off a subcommand's
// argument list, allowing flags before or after it.
func splitID(fs *flag.FlagSet, args []string, cmd string) ([]string, string) {
	var rest []string
	id := ""
	for i := 0; i < len(args); i++ {
		if !strings.HasPrefix(args[i], "-") && id == "" {
			id = args[i]
			continue
		}
		rest = append(rest, args[i])
		// A flag consumes the next token unless written -flag=value.
		if !strings.Contains(args[i], "=") && i+1 < len(args) {
			rest = append(rest, args[i+1])
			i++
		}
	}
	if id == "" {
		fatal(fmt.Errorf("usage: labctl %s <id> [flags]", cmd))
	}
	return rest, id
}

// follow streams a job's SSE events until the stream ends, printing
// one stderr line per event and returning the terminal state.
func follow(base, id string, from int) string {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", base, id, from))
	if err != nil {
		fatal(err)
	}
	//lint:errcheck response body Close cannot lose data the scanner already read
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(apiError(readBody(resp), resp.StatusCode))
	}
	state := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev labd.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			fatal(err)
		}
		switch ev.Type {
		case "state":
			state = ev.State
			fmt.Fprintf(os.Stderr, "labctl: job %.12s %s\n", ev.Job, ev.State)
			if ev.Error != "" {
				fmt.Fprintf(os.Stderr, "labctl:   %s\n", ev.Error)
			}
		case "run":
			if ev.Run == nil {
				continue
			}
			src := "ran"
			if ev.Run.Cached {
				src = "cached"
			}
			fmt.Fprintf(os.Stderr, "labctl: %s run %d — %.3fs (%s)\n",
				ev.Run.Label, ev.Run.Run, ev.Run.Result.Convergence.Seconds(), src)
		case "failure":
			if ev.Failure != nil {
				fmt.Fprintf(os.Stderr, "labctl: FAILED %s run %d: %s\n", ev.Failure.Label, ev.Failure.Run, ev.Failure.Err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return state
}

// fetch GETs a path, failing on any non-200.
func fetch(base, path string) []byte {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	data := readBody(resp)
	if resp.StatusCode != http.StatusOK {
		fatal(apiError(data, resp.StatusCode))
	}
	return data
}

// getJSON GETs a path and decodes its JSON body.
func getJSON(base, path string, v any) {
	if err := json.Unmarshal(fetch(base, path), v); err != nil {
		fatal(err)
	}
}

// readBody drains and closes a response body.
func readBody(resp *http.Response) []byte {
	//lint:errcheck response body Close cannot lose data ReadAll already drained
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	return data
}

// apiError turns an error response body into an error.
func apiError(data []byte, code int) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("labd (%d): %s", code, e.Error)
	}
	return fmt.Errorf("labd returned %d: %s", code, bytes.TrimSpace(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labctl:", err)
	os.Exit(1)
}
