// Package repro is a from-scratch Go reproduction of "Evaluating the
// Effect of Centralization on Routing Convergence on a Hybrid BGP-SDN
// Emulation Framework" (Gämperli, Kotronis, Dimitropoulos; SIGCOMM
// 2014 demo, arXiv:1611.03113).
//
// The library lives under internal/: a deterministic discrete-event
// network emulator (sim, netem), a BGP-4 implementation (bgp,
// bgp/wire, bgp/rib, policy), the SDN cluster substrate (sdn, sdn/ofp,
// speaker) and the paper's IDR controller (core), plus topology
// generation and dataset formats (topology, addressing), measurement
// tooling (monitor, collector, stats) and experiment orchestration
// (experiment, scenario).
//
// Evaluation runs through internal/lab, the unified entry point: a
// lab.Trial names any topology generator (lab.TopoSpec), an SDN
// placement strategy (lab.Placement), a routing-policy template
// (lab.PolicySpec: permit-all, gao-rexford, prefix-filter), timers
// and a triggering workload — an ordered schedule of typed,
// timestamped events (lab.Workload: withdraw, announce, failover,
// hijack, linkdown/linkup, and migrate for moving an AS into or out
// of the SDN cluster mid-run), with the classic single-event
// lab.Event enum kept as sugar — and returns a uniform lab.Result
// with one measured epoch per scheduled event; a lab.Sweep varies
// one declared axis (SDN count, MRAI, topology size, debounce, flap
// period, regime or policy) across seeded parallel runs; and one
// encoder layer renders every sweep — including the per-epoch rows —
// as a table, CSV, JSON, GitHub-flavored markdown or an SVG boxplot.
// The paper's figures, the policy family on internet-like AS graphs,
// the workload family (maintenance window, cascading failure, Poisson
// churn) and the ablations are declarative lab sweep specs registered
// in internal/figures and exposed by cmd/convergence.
//
// Results are reproducible artifacts, not ephemeral output: a sweep's
// fully-resolved spec serializes canonically (lab.Sweep.Canonical)
// and hashes to a content address, under which internal/artifact
// files one sealed record per (cell, seeded run) — the cache the
// sweep engine consults before executing a cell, so repeated sweeps
// perform zero emulations and interrupted ones resume. The data flow
// is registry → runner → store → report: cmd/labreport regenerates
// the whole evaluation as one self-documenting artifact (REPORT.md
// with a generated section per figure, per-figure SVG boxplots, and a
// sealed machine-readable manifest.json), byte-identical across
// repeated runs, and generates EXPERIMENTS.md's registry reference
// (-experiments-md).
//
// See README.md for the quickstart, ARCHITECTURE.md for the package
// map and layering rules, and EXPERIMENTS.md for the
// paper-versus-measured results. The root-level benchmarks
// (bench_test.go) regenerate every figure and table.
package repro
