// Package repro is a from-scratch Go reproduction of "Evaluating the
// Effect of Centralization on Routing Convergence on a Hybrid BGP-SDN
// Emulation Framework" (Gämperli, Kotronis, Dimitropoulos; SIGCOMM
// 2014 demo, arXiv:1611.03113).
//
// The library lives under internal/: a deterministic discrete-event
// network emulator (sim, netem), a BGP-4 implementation (bgp,
// bgp/wire, bgp/rib, policy), the SDN cluster substrate (sdn, sdn/ofp,
// speaker) and the paper's IDR controller (core), plus topology
// generation and dataset formats (topology, addressing), measurement
// tooling (monitor, collector, stats), experiment orchestration
// (experiment, scenario) and the evaluation harness (figures).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured results. The root-level
// benchmarks (bench_test.go) regenerate every figure and table.
package repro
