// video-loss recreates the paper's demo payload: "showing visually how
// [SDN centralization] affects an end-to-end video application under
// different scenarios". A steady probe stream (the video stand-in)
// runs from a client AS to a server AS while the routing system is
// perturbed; packet loss during re-convergence is the user-visible
// glitch.
//
// Scenario: a 6-AS ring. The server's prefix is reachable both ways
// around the ring; the best-path link fails mid-stream. The run
// compares the blackout under pure BGP against a deployment where
// half the ring is an SDN cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/sim"
	"repro/internal/topology"
)

const (
	client     = idr.ASN(1)
	server     = idr.ASN(4) // opposite side of the ring
	probeEvery = 50 * time.Millisecond
	streamFor  = 60 * time.Second
)

func run(members []idr.ASN) (loss float64, blackout time.Duration, err error) {
	g, err := topology.Ring(6)
	if err != nil {
		return 0, 0, err
	}
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	e, err := experiment.New(experiment.Config{
		Seed:       7,
		Graph:      g,
		SDNMembers: members,
		Timers:     timers,
		Debounce:   200 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := e.Start(); err != nil {
		return 0, 0, err
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		return 0, 0, err
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			return 0, 0, err
		}
	}
	if _, err := e.WaitConverged(time.Hour); err != nil {
		return 0, 0, err
	}

	// Start the "video" stream: one probe every 50ms, client -> server.
	e.Probes.ResetStats()
	stopStream := sim.Every(e.K, probeEvery, func() {
		_ = e.InjectProbe(client, server)
	})

	// Let the stream run cleanly. A bystander withdrawal two seconds
	// before the failure consumes every router's free advertisement
	// slot, so the repair updates for the real failure queue behind
	// the MRAI — the bursty condition BGP handles badly. Then break
	// the link in the middle of the client's path (AS3-AS4): the
	// upstream ASes keep forwarding into the dead branch until the
	// MRAI-paced withdrawals arrive, while the controller (when AS2
	// and AS3 are cluster switches) reprograms flows after one
	// debounce window.
	if err := e.RunFor(8 * time.Second); err != nil {
		return 0, 0, err
	}
	if err := e.Withdraw(5); err != nil { // bystander churn
		return 0, 0, err
	}
	if err := e.RunFor(2 * time.Second); err != nil {
		return 0, 0, err
	}
	if _, ok := e.BestPath(client, server); !ok {
		return 0, 0, fmt.Errorf("client has no route before failure")
	}
	if err := e.FailLink(3, 4); err != nil {
		return 0, 0, err
	}
	if err := e.RunFor(streamFor - 10*time.Second); err != nil {
		return 0, 0, err
	}
	stopStream()
	// Drain in-flight probes.
	if err := e.RunFor(2 * time.Second); err != nil {
		return 0, 0, err
	}

	stats := e.Probes.TotalLoss()
	lost := stats.Sent - stats.Delivered
	return stats.Loss(), time.Duration(lost) * probeEvery, nil
}

func main() {
	fmt.Printf("streaming %v of probes (%v apart) across a 6-AS ring;\n", streamFor, probeEvery)
	fmt.Println("the mid-path link AS3-AS4 fails 10s in")
	fmt.Println()

	loss, blackout, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pure BGP:        loss %5.1f%%  (~%v of dead air)\n",
		100*loss, blackout.Round(50*time.Millisecond))

	loss, blackout, err = run([]idr.ASN{2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("half-ring SDN:   loss %5.1f%%  (~%v of dead air)\n",
		100*loss, blackout.Round(50*time.Millisecond))
}
