// failover demonstrates the §4 route fail-over experiment and the
// sub-cluster resilience design goal.
//
// Part 1: a dual-homed stub origin loses its primary attachment to an
// 8-AS clique; the run compares re-convergence under pure BGP against
// a half-SDN deployment.
//
// Part 2: a four-AS ring whose two cluster members lose their direct
// link — the controller keeps them connected over the legacy world
// (disjoint sub-clusters under one controller, paper §2).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bgp"
	"repro/internal/figures"
	"repro/internal/lab"
)

func main() {
	timers := bgp.DefaultTimers()
	timers.MRAI = 10 * time.Second

	fmt.Println("== route fail-over on an 8-AS clique with a dual-homed stub origin ==")
	for _, k := range []int{0, 4, 8} {
		trial := lab.Trial{
			Topo:            lab.TopoSpec{Kind: "clique", N: 8},
			Placement:       lab.Placement{Strategy: lab.PlaceLast, K: k},
			Event:           lab.Failover,
			Timers:          timers,
			Debounce:        100 * time.Millisecond,
			ProcessingDelay: 25 * time.Millisecond,
			Seed:            7,
		}
		res, err := trial.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SDN members %d/8: re-convergence %.3fs\n", k, res.Convergence.Seconds())
	}

	fmt.Println("== sub-cluster split: intra-cluster link failure ==")
	res, err := figures.SubClusterExperiment(timers, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  members reach each other before split: %v\n", res.ReachableBeforeSplit)
	fmt.Printf("  members reach each other after split:  %v (via legacy ASes)\n", res.ReachableAfterSplit)
	fmt.Printf("  re-convergence after split: %.3fs\n", res.ReconvergenceTime.Seconds())
}
