// caida-internet runs a hybrid experiment on a measured-data-style
// topology: a synthesized CAIDA-format AS-relationship graph (tier-1
// clique, provider hierarchy, lateral peering) with Gao-Rexford
// valley-free policies, latencies drawn from a synthesized iPlane
// inter-PoP dataset, and an SDN cluster around the tier-1 core.
//
// It demonstrates the framework's dataset pipeline end to end:
// synthesize -> serialize -> parse -> collapse -> annotate -> emulate.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/topology"
)

func main() {
	rng := rand.New(rand.NewSource(2014))

	// 1. Synthesize a CAIDA-style AS relationship graph and round-trip
	//    it through the on-disk format, as if it had been downloaded.
	rel, err := topology.SynthesizeInternetLike(topology.InternetLikeConfig{ASes: 30}, rng)
	if err != nil {
		log.Fatal(err)
	}
	var caida bytes.Buffer
	if err := topology.WriteCAIDA(&caida, rel); err != nil {
		log.Fatal(err)
	}
	parsed, err := topology.ReadCAIDA(&caida)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthesize iPlane-style PoP measurements for latencies and
	//    collapse them to the AS level.
	pops, err := topology.SynthesizeIPlane(parsed, 3, rng)
	if err != nil {
		log.Fatal(err)
	}
	var iplane bytes.Buffer
	if err := topology.WriteIPlane(&iplane, pops); err != nil {
		log.Fatal(err)
	}
	links, err := topology.ReadIPlane(&iplane)
	if err != nil {
		log.Fatal(err)
	}
	g := topology.CollapseToASGraph(links)
	annotated := topology.AnnotateRelationships(g, parsed)
	fmt.Printf("topology: %d ASes, %d links (%d with relationships)\n",
		g.NumNodes(), g.NumEdges(), annotated)

	// 3. Put the tier-1 clique (AS1..AS3) under the IDR controller.
	members := []idr.ASN{1, 2, 3}
	timers := bgp.DefaultTimers()
	timers.MRAI = 10 * time.Second
	e, err := experiment.New(experiment.Config{
		Seed:       2014,
		Graph:      g,
		SDNMembers: members,
		Policy:     policy.GaoRexford{TagCommunities: true},
		Timers:     timers,
		Debounce:   500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Start(); err != nil {
		log.Fatal(err)
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := e.WaitConverged(2 * time.Hour); err != nil {
		log.Fatal(err)
	}

	reached := 0
	asns := e.ASNs()
	for _, from := range asns {
		ok := true
		for _, to := range asns {
			if !e.Reachable(from, to) {
				ok = false
				break
			}
		}
		if ok {
			reached++
		}
	}
	fmt.Printf("converged: %d/%d ASes reach every prefix (valley-free policies\n", reached, len(asns))
	fmt.Println("  can legitimately hide some stub-to-stub routes)")

	// 4. Withdraw a stub prefix and compare churn at the cluster vs a
	//    legacy transit AS.
	stub := asns[len(asns)-1]
	d, err := e.MeasureConvergence(func() error { return e.Withdraw(stub) }, 2*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("withdrawal of %v's prefix converged in %.3fs\n", stub, d.Seconds())
	fmt.Printf("controller stats: %+v\n", e.Ctrl.Stats())
}
