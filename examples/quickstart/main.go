// Quickstart: build the smallest interesting hybrid experiment — the
// components of the paper's Figure 1 in miniature. A four-AS line
// where the middle two ASes form an SDN cluster under the IDR
// controller, with a route collector watching the legacy routers:
//
//	AS1 (BGP) — AS2 (SDN) — AS3 (SDN) — AS4 (BGP)
//	                 \         /
//	            controller + cluster BGP speaker
//
// The example announces every AS's prefix, waits for convergence,
// verifies end-to-end connectivity with probes, then withdraws one
// prefix and prints the route-change timeline.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/topology"
)

func main() {
	g, err := topology.Line(4)
	if err != nil {
		log.Fatal(err)
	}
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second // keep the demo snappy

	e, err := experiment.New(experiment.Config{
		Seed:          42,
		Graph:         g,
		SDNMembers:    []idr.ASN{2, 3},
		Timers:        timers,
		Debounce:      200 * time.Millisecond,
		WithCollector: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Start(); err != nil {
		log.Fatal(err)
	}
	if err := e.WaitEstablished(2 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sessions established (legacy BGP + cluster speaker + collector)")

	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("network converged; best paths toward AS4:")
	for _, asn := range e.ASNs() {
		if asn == 4 {
			continue
		}
		path, ok := e.BestPath(asn, 4)
		fmt.Printf("  %v: [%v] (ok=%v)\n", asn, path, ok)
	}

	// End-to-end connectivity check, the framework's ping equivalent.
	for _, pair := range [][2]idr.ASN{{1, 4}, {4, 1}, {1, 3}, {2, 4}} {
		if err := e.InjectProbe(pair[0], pair[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := e.RunFor(time.Second); err != nil {
		log.Fatal(err)
	}
	total := e.Probes.TotalLoss()
	fmt.Printf("probes: sent=%d delivered=%d loss=%.0f%%\n",
		total.Sent, total.Delivered, 100*total.Loss())

	// Withdraw AS4's prefix and watch the change ripple.
	d, err := e.MeasureConvergence(func() error { return e.Withdraw(4) }, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("withdrawal of AS4's prefix converged in %.3fs\n", d.Seconds())

	pfx, _ := e.OriginPrefix(4)
	fmt.Println("route-change timeline for", pfx, "(legacy routers):")
	if err := e.Log.WriteTimeline(os.Stdout, pfx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector recorded %d updates\n", len(e.Coll.Records()))
}
