// withdrawal-clique reproduces the paper's Figure 2: IDR convergence
// time of a route withdrawal on a 16-AS clique versus the fraction of
// ASes under centralized (SDN) route control, as boxplots over 10
// seeded runs. Expect a roughly linear reduction: pure BGP explores
// paths for minutes (MRAI-paced), while controlled ASes follow the
// controller's single consistent decision.
//
// The full-fidelity sweep (16 ASes, 9 fractions, 10 runs, MRAI 30s)
// takes a minute or two of wall time; pass -quick for a reduced demo.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bgp"
	"repro/internal/figures"
)

func main() {
	quick := flag.Bool("quick", false, "smaller clique and fewer runs")
	flag.Parse()

	cfg := figures.SweepConfig{Kind: figures.Withdrawal, BaseSeed: 1}
	if *quick {
		timers := bgp.DefaultTimers()
		timers.MRAI = 10 * time.Second
		cfg.CliqueSize = 8
		cfg.SDNCounts = []int{0, 2, 4, 6, 8}
		cfg.Runs = 3
		cfg.Timers = timers
	}

	start := time.Now()
	points, err := figures.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	size := cfg.CliqueSize
	if size == 0 {
		size = 16
	}
	if err := figures.WriteTable(os.Stdout, figures.Withdrawal, size, points); err != nil {
		log.Fatal(err)
	}
	a, b, r2 := figures.LinearFit(points)
	fmt.Printf("# linear fit: t = %.1fs %+.1fs*fraction (r2 = %.3f)\n", a, b, r2)
	fmt.Printf("# swept in %v wall time\n", time.Since(start).Round(time.Millisecond))
}
