// withdrawal-clique reproduces the paper's Figure 2: IDR convergence
// time of a route withdrawal on a 16-AS clique versus the fraction of
// ASes under centralized (SDN) route control, as boxplots over 10
// seeded runs. Expect a roughly linear reduction: pure BGP explores
// paths for minutes (MRAI-paced), while controlled ASes follow the
// controller's single consistent decision.
//
// The sweep comes from the declarative experiment registry
// (internal/figures) and runs on the unified evaluation API
// (internal/lab); swap Options.Topo for any other generator — e.g.
// lab.TopoSpec{Kind: "grid", N: 4, M: 4} — to sweep a non-clique
// network with the same harness.
//
// The full-fidelity sweep (16 ASes, 9 fractions, 10 runs, MRAI 30s)
// takes a minute or two of wall time; pass -quick for a reduced demo.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/figures"
	"repro/internal/lab"
)

func main() {
	quick := flag.Bool("quick", false, "smaller clique and fewer runs")
	flag.Parse()

	opts := figures.Options{BaseSeed: 1}
	if *quick {
		opts.Topo = &lab.TopoSpec{Kind: "clique", N: 8}
		opts.SDNCounts = []int{0, 2, 4, 6, 8}
		opts.Runs = 3
		opts.MRAI = 10 * time.Second
	}

	start := time.Now()
	res, err := figures.Run("fig2", opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := lab.Write(os.Stdout, lab.FormatTable, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# swept in %v wall time\n", time.Since(start).Round(time.Millisecond))
}
